"""Head-to-head comparison: urcgc vs CBCAST on identical conditions.

Section 6 of the paper in one function call: both protocols run the
same workload over the same fault plan (same seeds), and the report
collects what the paper argues about — delay, blocked time, control
traffic, losses — side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.report import render_table
from ..core.config import UrcgcConfig
from ..types import ProcessId, Time
from ..workloads.generators import FixedBudgetWorkload
from ..workloads.scenarios import crashes, omission, reliable
from .cbcast_cluster import CbcastCluster
from .cluster import SimCluster

__all__ = ["ProtocolOutcome", "ComparisonReport", "compare_protocols"]


@dataclass(frozen=True)
class ProtocolOutcome:
    """One protocol's results on the shared scenario."""

    protocol: str
    mean_delay: float
    complete: int
    incomplete: int
    blocked_rounds: int
    control_messages: int
    control_bytes: int
    quiesced_at: Time | None


@dataclass(frozen=True)
class ComparisonReport:
    """Both outcomes plus the scenario parameters."""

    scenario: str
    n: int
    K: int
    total_messages: int
    urcgc: ProtocolOutcome
    cbcast: ProtocolOutcome

    def render(self) -> str:
        rows = []
        for outcome in (self.urcgc, self.cbcast):
            rows.append(
                [
                    outcome.protocol,
                    outcome.mean_delay,
                    outcome.complete,
                    outcome.incomplete,
                    outcome.blocked_rounds,
                    outcome.control_messages,
                    outcome.control_bytes,
                    outcome.quiesced_at
                    if outcome.quiesced_at is not None
                    else float("nan"),
                ]
            )
        return render_table(
            [
                "protocol",
                "D (rtd)",
                "complete",
                "lost",
                "blocked rounds",
                "ctrl msgs",
                "ctrl bytes",
                "quiesce (rtd)",
            ],
            rows,
            title=(
                f"urcgc vs CBCAST — {self.scenario}; n={self.n}, K={self.K}, "
                f"{self.total_messages} messages"
            ),
        )

    def as_dict(self) -> dict:
        def outcome_dict(o: ProtocolOutcome) -> dict:
            return {
                "mean_delay": o.mean_delay,
                "complete": o.complete,
                "incomplete": o.incomplete,
                "blocked_rounds": o.blocked_rounds,
                "control_messages": o.control_messages,
                "control_bytes": o.control_bytes,
                "quiesced_at": o.quiesced_at,
            }

        return {
            "experiment": "compare",
            "scenario": self.scenario,
            "n": self.n,
            "K": self.K,
            "total_messages": self.total_messages,
            "urcgc": outcome_dict(self.urcgc),
            "cbcast": outcome_dict(self.cbcast),
        }


def _fault_plan(scenario: str, n: int, seed: int):
    pids = [ProcessId(i) for i in range(n)]
    if scenario == "reliable":
        return reliable()
    if scenario == "crash":
        return crashes({ProcessId(n - 1): 2.0}, rng=random.Random(seed))
    if scenario.startswith("omission"):
        one_in = int(scenario.split("-1/")[1])
        return omission(pids, one_in, rng=random.Random(seed))
    raise ValueError(
        f"unknown scenario {scenario!r}; use reliable, crash, or omission-1/<N>"
    )


def compare_protocols(
    *,
    scenario: str = "crash",
    n: int = 8,
    K: int = 3,
    total_messages: int = 64,
    seed: int = 1,
    max_rounds: int = 600,
) -> ComparisonReport:
    """Run both protocols on the identical scenario and report."""
    pids = [ProcessId(i) for i in range(n)]

    urcgc_cluster = SimCluster(
        UrcgcConfig(n=n, K=K),
        workload=FixedBudgetWorkload(pids, total=total_messages),
        faults=_fault_plan(scenario, n, seed),
        max_rounds=max_rounds,
        seed=seed,
        trace=False,
    )
    quiesced = urcgc_cluster.run_until_quiescent(drain_subruns=2 * K)
    urcgc_report = urcgc_cluster.delay_report()
    urcgc_control = urcgc_cluster.network.stats.total(control_only=True)
    urcgc_outcome = ProtocolOutcome(
        "urcgc",
        urcgc_report.mean_delay,
        urcgc_report.complete_messages,
        urcgc_report.incomplete_messages + urcgc_report.discarded_messages,
        0,  # urcgc never blocks the application for agreement
        urcgc_control.delivered,
        urcgc_control.delivered_bytes,
        quiesced,
    )

    cbcast_cluster = CbcastCluster(
        n,
        K=K,
        workload=FixedBudgetWorkload(pids, total=total_messages),
        faults=_fault_plan(scenario, n, seed),
        max_rounds=max_rounds,
        seed=seed,
        trace=False,
    )
    cbcast_cluster.run()
    cbcast_report = cbcast_cluster.delay_report()
    cbcast_control = cbcast_cluster.network.stats.total(control_only=True)
    cbcast_outcome = ProtocolOutcome(
        "cbcast",
        cbcast_report.mean_delay,
        cbcast_report.complete_messages,
        cbcast_report.incomplete_messages,
        sum(
            cbcast_cluster.engines[p].blocked_rounds
            for p in cbcast_cluster.active_pids()
        ),
        cbcast_control.delivered,
        cbcast_control.delivered_bytes,
        None,
    )

    return ComparisonReport(
        scenario, n, K, total_messages, urcgc_outcome, cbcast_outcome
    )
