"""Cross-shard causal bridge: the Generic-Multicast intersection rule.

A publish whose topics map to several shards must be ordered
consistently *at the shards it targets* — and only there.  The bridge
realizes the Generic Multicast semantics (PAPERS.md): timestamps are
exchanged exclusively among the destination shards of a message, no
global sequencer ever runs, and disjoint-destination messages pay
nothing for each other.

The algorithm is the classic two-phase timestamp agreement (Skeen),
collapsed to its synchronous core since the tier stamps before
injection:

1. *Propose* — every destination shard advances its logical clock and
   proposes the new value.
2. *Decide* — the final timestamp is the maximum proposal; every
   destination clock is raised to it.

Two bridged messages sharing at least one destination shard therefore
receive strictly ordered timestamps, and the tier injects bridged
messages into each destination group through that shard's *bridge
agent* (member 0) in timestamp order.  Injection through a single
member makes all of a shard's bridged traffic one causal chain, so
URCGC's Uniform Ordering delivers it identically at every member —
the property :func:`repro.analysis.checkers.check_bridge_ordering`
audits across shards.
"""

from __future__ import annotations

from ..errors import ConfigError, ProtocolError

__all__ = ["CausalBridge"]


class CausalBridge:
    """Per-shard logical clocks implementing the intersection rule."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ConfigError(f"need at least one shard, got {shards}")
        self._clocks = [0] * shards
        #: Stamps handed out, for audits: ``(stamp, dests)`` per call.
        self.stamped: list[tuple[int, tuple[int, ...]]] = []

    def clock(self, shard: int) -> int:
        """The shard's current logical clock (bridged traffic only)."""
        return self._clocks[shard]

    def grow(self, count: int = 1) -> None:
        """Add ``count`` shards (ring growth).  A new shard's clock
        starts at zero; its first shared-destination stamp raises it
        past every established clock, so per-shard monotonicity is
        unaffected by growth."""
        if count < 1:
            raise ConfigError(f"can only grow by a positive count, got {count}")
        self._clocks.extend([0] * count)

    def stamp(self, dests: tuple[int, ...]) -> int:
        """Timestamp one multi-shard message over its destination set.

        Returns the decided (maximum-proposal) timestamp; every
        destination clock is raised to it, so any later message
        sharing a destination gets a strictly larger stamp.
        """
        if len(dests) < 2:
            raise ProtocolError(
                f"bridge stamps multi-shard messages only, got dests {dests}"
            )
        if len(set(dests)) != len(dests):
            raise ProtocolError(f"duplicate destination shards: {dests}")
        proposals = []
        for shard in dests:
            self._clocks[shard] += 1
            proposals.append(self._clocks[shard])
        decided = max(proposals)
        for shard in dests:
            if self._clocks[shard] < decided:
                self._clocks[shard] = decided
        self.stamped.append((decided, tuple(dests)))
        return decided
