"""Client-tier wire PDUs (PROTOCOL §14.1).

Four PDUs cross the client/frontend boundary, registered in the
:data:`repro.net.wire.global_registry` alongside the group-internal
tags (the client tier shares the LAN, so tags must not collide):

* :class:`ClientHello` (tag 19) — session open / resume.
* :class:`ClientPublish` (tag 20) — a sequence-numbered publish to one
  or more topics.
* :class:`ClientDeliver` (tag 21) — a causal delivery fanned back out
  to a subscribed session; per-``(session, shard)`` streams carry
  their own contiguous ``deliver_seq``.
* :class:`ClientAck` (tag 22) — cumulative acknowledgement, both
  directions: the frontend acks publishes (granting publish credit),
  the client acks deliveries (granting fan-out credit).

All fixed-width headers encode through preallocated ``struct.Struct``
codecs (the wire layer's struct fast path), so the hot client path
does one pack/unpack call per PDU.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import WireFormatError
from ..net.wire import Reader, Writer, global_registry

__all__ = [
    "ACK_PUBLISH",
    "ACK_DELIVER",
    "MAX_TOPICS",
    "ClientHello",
    "ClientPublish",
    "ClientDeliver",
    "ClientAck",
    "KIND_CLIENT",
]

_TAG_CLIENT_HELLO = 19
_TAG_CLIENT_PUB = 20
_TAG_CLIENT_DELIVER = 21
_TAG_CLIENT_ACK = 22

#: Packet-kind label for traffic accounting (client-tier traffic is
#: neither group data nor control).
KIND_CLIENT = "client"

#: Topics one publish may target (multi-topic publishes cross shards
#: through the bridge; the intersection rule is quadratic in this).
MAX_TOPICS = 8

#: Longest topic name on the wire, in bytes.
MAX_TOPIC_LEN = 128

#: ``ClientAck.kind`` values: a frontend acknowledging publishes, or a
#: client acknowledging deliveries.
ACK_PUBLISH = 0
ACK_DELIVER = 1

_HELLO_HEAD = struct.Struct("!QHII")  # client_id, credit, resume_seq, acked_seq
_PUB_HEAD = struct.Struct("!QI")  # client_id, client_seq
# client_id, shard, deliver_seq, origin, origin_seq, epoch
_DELIVER_HEAD = struct.Struct("!QHIQIH")
# kind, client_id, shard, ack_seq, credit, resume_seq, epoch
_ACK_HEAD = struct.Struct("!BQHIHIH")

_U64_MAX = 0xFFFF_FFFF_FFFF_FFFF
_U32_MAX = 0xFFFF_FFFF
_U16_MAX = 0xFFFF


def _check_client_id(client_id: int) -> None:
    if not 0 <= client_id <= _U64_MAX:
        raise WireFormatError(f"client id {client_id} outside u64")


@dataclass(frozen=True)
class ClientHello:
    """Open (or resume) a client session at a frontend.

    ``credit`` is the publish window the client *requests*; the
    frontend grants its own value in the hello-ack.  ``resume_seq`` is
    the last publish sequence number the client used in a previous
    life of this session (0 for a fresh session) and ``acked_seq`` the
    highest cumulative publish-ack it received.  A frontend never
    trusts ``resume_seq`` for a session it has no record of — it
    answers with its own accepted frontier in the hello-ack's
    ``resume_seq`` (the negotiated resume handshake, PROTOCOL §14.7),
    and the client replays everything past that offer.
    """

    client_id: int
    credit: int = 32
    resume_seq: int = 0
    acked_seq: int = 0

    def __post_init__(self) -> None:
        _check_client_id(self.client_id)
        if not 1 <= self.credit <= _U16_MAX:
            raise WireFormatError(f"hello credit {self.credit} outside [1, 65535]")
        if not 0 <= self.resume_seq <= _U32_MAX:
            raise WireFormatError(f"resume_seq {self.resume_seq} outside u32")
        if not 0 <= self.acked_seq <= self.resume_seq:
            raise WireFormatError(
                f"acked_seq {self.acked_seq} outside [0, resume_seq={self.resume_seq}]"
            )

    def encode_fields(self, writer: Writer) -> None:
        writer.pack(
            _HELLO_HEAD, self.client_id, self.credit, self.resume_seq, self.acked_seq
        )

    @classmethod
    def decode_fields(cls, reader: Reader) -> "ClientHello":
        client_id, credit, resume_seq, acked_seq = reader.unpack(_HELLO_HEAD)
        return cls(client_id, credit, resume_seq, acked_seq)


@dataclass(frozen=True)
class ClientPublish:
    """A client's sequence-numbered publish to one or more topics.

    ``client_seq`` starts at 1 and is contiguous per session: the
    frontend rejects gaps and duplicates, which is what makes the
    cumulative :class:`ClientAck` meaningful.
    """

    client_id: int
    client_seq: int
    topics: tuple[bytes, ...]
    payload: bytes = b""

    def __post_init__(self) -> None:
        _check_client_id(self.client_id)
        if not 1 <= self.client_seq <= _U32_MAX:
            raise WireFormatError(f"client_seq {self.client_seq} outside [1, u32]")
        if not 1 <= len(self.topics) <= MAX_TOPICS:
            raise WireFormatError(
                f"publish must target 1..{MAX_TOPICS} topics, got {len(self.topics)}"
            )
        if len(set(self.topics)) != len(self.topics):
            raise WireFormatError("publish topics must be distinct")
        for topic in self.topics:
            if not 1 <= len(topic) <= MAX_TOPIC_LEN:
                raise WireFormatError(f"topic of {len(topic)} bytes outside [1, {MAX_TOPIC_LEN}]")

    def encode_fields(self, writer: Writer) -> None:
        writer.pack(_PUB_HEAD, self.client_id, self.client_seq)
        writer.u8(len(self.topics))
        for topic in self.topics:
            writer.bytes_field(topic)
        writer.bytes_field(self.payload)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "ClientPublish":
        client_id, client_seq = reader.unpack(_PUB_HEAD)
        topics = tuple(reader.bytes_field() for _ in range(reader.u8()))
        payload = reader.bytes_field()
        return cls(client_id, client_seq, topics, payload)


@dataclass(frozen=True)
class ClientDeliver:
    """One causal delivery fanned out to a subscribed session.

    Deliveries form per-``(session, shard)`` streams: ``deliver_seq``
    is contiguous within the stream, so the client state machine can
    detect fan-out loss without any n-sized metadata.  ``origin`` /
    ``origin_seq`` identify the publish (globally unique), and
    ``topic`` is the subscribed topic that matched.  ``epoch`` is the
    stream's re-anchor generation: it bumps when the stream fails over
    to a successor frontend, so stragglers from a previous life are
    recognized and dropped instead of corrupting the new cursor.
    """

    client_id: int
    shard: int
    deliver_seq: int
    origin: int
    origin_seq: int
    topic: bytes
    payload: bytes = b""
    epoch: int = 0

    def __post_init__(self) -> None:
        _check_client_id(self.client_id)
        _check_client_id(self.origin)
        if not 0 <= self.shard <= _U16_MAX:
            raise WireFormatError(f"shard {self.shard} outside u16")
        if not 1 <= self.deliver_seq <= _U32_MAX:
            raise WireFormatError(f"deliver_seq {self.deliver_seq} outside [1, u32]")
        if not 1 <= self.origin_seq <= _U32_MAX:
            raise WireFormatError(f"origin_seq {self.origin_seq} outside [1, u32]")
        if not 1 <= len(self.topic) <= MAX_TOPIC_LEN:
            raise WireFormatError(f"topic of {len(self.topic)} bytes outside [1, {MAX_TOPIC_LEN}]")
        if not 0 <= self.epoch <= _U16_MAX:
            raise WireFormatError(f"epoch {self.epoch} outside u16")

    def encode_fields(self, writer: Writer) -> None:
        writer.pack(
            _DELIVER_HEAD,
            self.client_id,
            self.shard,
            self.deliver_seq,
            self.origin,
            self.origin_seq,
            self.epoch,
        )
        writer.bytes_field(self.topic)
        writer.bytes_field(self.payload)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "ClientDeliver":
        client_id, shard, deliver_seq, origin, origin_seq, epoch = reader.unpack(
            _DELIVER_HEAD
        )
        topic = reader.bytes_field()
        payload = reader.bytes_field()
        return cls(
            client_id, shard, deliver_seq, origin, origin_seq, topic, payload, epoch
        )


@dataclass(frozen=True)
class ClientAck:
    """Cumulative acknowledgement; direction selected by ``kind``.

    * ``ACK_PUBLISH`` (frontend → client): every publish with
      ``client_seq <= ack_seq`` was processed by the group, and the
      client may keep up to ``credit`` publishes outstanding.  The
      hello-ack is this kind; its ``resume_seq`` carries the
      frontend's *accepted frontier* — the resume offer of the
      negotiated handshake: a resuming client replays every retained
      publish with ``client_seq > resume_seq``.
    * ``ACK_DELIVER`` (client → frontend): every delivery on stream
      ``shard`` with ``deliver_seq <= ack_seq`` reached the client in
      stream generation ``epoch``; the frontend un-parks further
      fan-out for the stream (acks from older epochs are ignored).
    """

    kind: int
    client_id: int
    shard: int
    ack_seq: int
    credit: int
    resume_seq: int = 0
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (ACK_PUBLISH, ACK_DELIVER):
            raise WireFormatError(f"unknown ack kind {self.kind}")
        _check_client_id(self.client_id)
        if not 0 <= self.shard <= _U16_MAX:
            raise WireFormatError(f"shard {self.shard} outside u16")
        if not 0 <= self.ack_seq <= _U32_MAX:
            raise WireFormatError(f"ack_seq {self.ack_seq} outside u32")
        if not 0 <= self.credit <= _U16_MAX:
            raise WireFormatError(f"credit {self.credit} outside u16")
        if not 0 <= self.resume_seq <= _U32_MAX:
            raise WireFormatError(f"resume_seq {self.resume_seq} outside u32")
        if not 0 <= self.epoch <= _U16_MAX:
            raise WireFormatError(f"epoch {self.epoch} outside u16")

    def encode_fields(self, writer: Writer) -> None:
        writer.pack(
            _ACK_HEAD,
            self.kind,
            self.client_id,
            self.shard,
            self.ack_seq,
            self.credit,
            self.resume_seq,
            self.epoch,
        )

    @classmethod
    def decode_fields(cls, reader: Reader) -> "ClientAck":
        kind, client_id, shard, ack_seq, credit, resume_seq, epoch = reader.unpack(
            _ACK_HEAD
        )
        return cls(kind, client_id, shard, ack_seq, credit, resume_seq, epoch)


global_registry.register(_TAG_CLIENT_HELLO, ClientHello, ClientHello.decode_fields)
global_registry.register(_TAG_CLIENT_PUB, ClientPublish, ClientPublish.decode_fields)
global_registry.register(_TAG_CLIENT_DELIVER, ClientDeliver, ClientDeliver.decode_fields)
global_registry.register(_TAG_CLIENT_ACK, ClientAck, ClientAck.decode_fields)
