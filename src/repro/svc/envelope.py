"""The service-tier envelope riding inside ``UserMessage.payload``.

A client publish, once accepted by its home frontend, is wrapped into
an :class:`Envelope` and submitted to each destination shard's URCGC
group as an ordinary application payload — the group protocol never
learns about clients, topics or shards.  The envelope is therefore
*not* a registered wire PDU: it is interpreted by frontends after
causal processing, and identified by a magic first byte so frontends
can coexist with non-service traffic on the same member.

For multi-shard publishes the envelope additionally carries the
bridge timestamp and the full destination-shard set (PROTOCOL §14.3):
the destinations make every bridged message self-describing, which is
what the cross-shard ordering checker audits against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WireFormatError
from ..net.wire import Reader, Writer

__all__ = ["ENVELOPE_MAGIC", "Envelope"]

#: First payload byte of every service-tier envelope.
ENVELOPE_MAGIC = 0xE5

_FLAG_BRIDGED = 0x01


@dataclass(frozen=True)
class Envelope:
    """One client publish as seen by the group layer.

    ``(origin, origin_seq)`` — the publishing session and its sequence
    number — globally identify the publish across every shard that
    carries it.
    """

    origin: int
    origin_seq: int
    topics: tuple[bytes, ...]
    payload: bytes = b""
    #: Bridge fields; ``stamp`` is the Generic-Multicast timestamp and
    #: ``dests`` the destination shard set (empty for single-shard).
    stamp: int = 0
    dests: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.bridged and len(self.dests) < 2:
            raise WireFormatError(
                f"bridged envelope must name >= 2 destination shards, got {self.dests}"
            )

    @property
    def bridged(self) -> bool:
        return self.stamp > 0

    @property
    def msg_id(self) -> tuple[int, int]:
        """The globally unique publish identity ``(origin, origin_seq)``."""
        return (self.origin, self.origin_seq)

    def with_bridge(self, stamp: int, dests: tuple[int, ...]) -> "Envelope":
        """A copy stamped by the cross-shard bridge."""
        return Envelope(
            self.origin, self.origin_seq, self.topics, self.payload, stamp, dests
        )

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.u8(ENVELOPE_MAGIC)
        writer.u64(self.origin)
        writer.u32(self.origin_seq)
        writer.u8(_FLAG_BRIDGED if self.bridged else 0)
        if self.bridged:
            writer.u32(self.stamp)
            writer.u8(len(self.dests))
            for shard in self.dests:
                writer.u16(shard)
        writer.u8(len(self.topics))
        for topic in self.topics:
            writer.bytes_field(topic)
        writer.bytes_field(self.payload)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Envelope | None":
        """Decode a payload, or None when it is not a service envelope."""
        if not data or data[0] != ENVELOPE_MAGIC:
            return None
        reader = Reader(data)
        reader.u8()  # magic
        origin = reader.u64()
        origin_seq = reader.u32()
        flags = reader.u8()
        stamp = 0
        dests: tuple[int, ...] = ()
        if flags & _FLAG_BRIDGED:
            stamp = reader.u32()
            dests = tuple(reader.u16() for _ in range(reader.u8()))
        topics = tuple(reader.bytes_field() for _ in range(reader.u8()))
        payload = reader.bytes_field()
        reader.expect_end()
        return cls(origin, origin_seq, topics, payload, stamp, dests)
