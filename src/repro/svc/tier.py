"""The sharded service: one publish/subscribe surface over many groups.

:class:`ShardedService` is the tentpole assembly (PROTOCOL §14): it
owns ``S`` independent URCGC groups (one :class:`SimCluster` each), a
:class:`Frontend` per member, a consistent-hash
:class:`~repro.svc.router.ShardRouter`, and the cross-shard
:class:`~repro.svc.bridge.CausalBridge`.  Clients connect through it
and never learn any of this — they see ``connect`` / ``subscribe`` /
``publish`` and a stream of deliveries.

Routing invariants the tier maintains:

* A session homes at one frontend (hash of the client id) — the only
  place its publish sequence is validated and acked.
* A client's single-shard publishes enter each shard through one
  *sticky ingress member* — one origin chain per (client, shard), so
  URCGC's per-origin ordering preserves client publish order.
* Multi-shard publishes are stamped by the bridge and injected through
  every destination shard's *bridge agent* (the lowest live member) in
  stamp order — one origin chain for all bridged traffic per shard, so
  every member of every destination shard agrees with the bridge order.

Both fault paths preserve those invariants by *drain discipline*
(PROTOCOL §14.7–14.8): before any role moves — a dead frontend's
homes, streams, ingress chains, the bridge agency, or a topic's owning
shard — the tier first drains every in-flight envelope to a resolved
state (processed at the live members, or discarded by the orphan
rule).  Post-drain all live members of a shard agree on the processed
set, which is what makes count-free stream re-anchoring, chain
switching, and the salvage triage sound.

All client PDUs cross the tier through the real wire codecs
(:data:`repro.net.wire.global_registry`) — the simulated transport is
in-process, the bytes are not.
"""

from __future__ import annotations

from ..core.config import UrcgcConfig
from ..errors import ConfigError, ProtocolError
from ..harness.cluster import SimCluster
from ..net.wire import global_registry
from ..obs import Registry
from ..types import ProcessId, Time
from .bridge import CausalBridge
from .envelope import Envelope
from .frontend import Frontend
from .router import ShardRouter
from .session import ClientSession
from .wire import ACK_DELIVER, ACK_PUBLISH, ClientAck, ClientDeliver, ClientPublish

__all__ = ["ShardedService", "HANDOFF_ORIGIN"]

#: One subrun of simulated time (2 rounds x 0.5).
_SUBRUN = 1.0

#: Reserved envelope origin of topic-handoff markers: the bridged
#: fence a rebalance pushes through both shards of every move, so the
#: handoff itself is ordered in the cross-shard bridge logs (and
#: audited by ``check_bridge_ordering``).  No client can own it.
HANDOFF_ORIGIN = 0xFFFF_FFFF_FFFF_FFFF


class ShardedService:
    """``S`` URCGC groups behind one client-facing API.

    Parameters
    ----------
    shards, members:
        Topology: ``shards`` independent groups of ``members`` each.
    config:
        Per-shard group configuration (``n`` must equal ``members``);
        defaults to a plain ``UrcgcConfig(n=members)``.
    seed:
        Base determinism seed; shard ``s`` runs under ``seed + s``.
    registry:
        Service-tier metric surface (client/session/delivery counters,
        latency histograms).  Defaults to a fresh :class:`Registry`.
    grant_credit, deliver_window:
        Frontend flow-control defaults (see :class:`Frontend`).
    max_rounds:
        Per-shard round budget — generous, serve runs are long.
    """

    def __init__(
        self,
        shards: int,
        members: int = 3,
        *,
        config: UrcgcConfig | None = None,
        seed: int = 0,
        replicas: int = 64,
        registry: Registry | None = None,
        grant_credit: int = 32,
        deliver_window: int = 256,
        max_rounds: int = 20_000,
    ) -> None:
        if config is None:
            config = UrcgcConfig(n=members)
        if config.n != members:
            raise ConfigError(
                f"config.n={config.n} does not match members={members}"
            )
        self.shards = shards
        self.members = members
        self.config = config
        self.registry = registry if registry is not None else Registry()
        self.router = ShardRouter(shards, replicas=replicas)
        self.bridge = CausalBridge(shards)
        self._seed = seed
        self._grant_credit = grant_credit
        self._deliver_window = deliver_window
        self._max_rounds = max_rounds
        self.clusters: list[SimCluster] = []
        self.frontends: list[list[Frontend]] = []
        for shard in range(shards):
            self._build_shard(shard)
        self.sessions: dict[int, ClientSession] = {}
        #: Home frontend of each connected session.
        self._home: dict[int, tuple[int, int]] = {}
        #: Delivery-agent member per (client, shard) stream.
        self._stream_member: dict[tuple[int, int], int] = {}
        #: Topics each (client, shard) stream carries (the tier-side
        #: record that survives frontend death and feeds handoff).
        self._subscriptions: dict[tuple[int, int], set[bytes]] = {}
        #: Subscribers per topic (the handoff work list).
        self._topic_subs: dict[bytes, set[int]] = {}
        #: Bridged publishes awaiting processing, by destination shard
        #: still outstanding (idempotent per shard, so a salvaged
        #: re-injection and its original copy cannot double-count).
        self._multi_pending: dict[tuple[int, int], set[int]] = {}
        #: Frontends killed by :meth:`fail_frontend`.
        self._dead: set[tuple[int, int]] = set()
        #: Client PDUs lost at dead frontends (failover replays them).
        self.dropped_pdus = 0
        #: Failovers and topic handoffs performed (audit evidence).
        self.failovers = 0
        self.moved_topics = 0
        self._handoff_seq = 0
        #: Client PDUs shuttled through the wire codecs, both ways.
        self.pdus_moved = 0
        self._horizon: Time = Time(0.0)
        self.registry.set_gauge("svc.shards", shards)
        self.registry.set_gauge("svc.members_per_shard", members)

    def _build_shard(self, shard: int) -> None:
        cluster = SimCluster(
            self.config, seed=self._seed + shard, max_rounds=self._max_rounds
        )
        row = [
            Frontend(
                shard,
                member,
                cluster.services[member],
                grant_credit=self._grant_credit,
                deliver_window=self._deliver_window,
                registry=self.registry,
                clock=lambda shard=shard: float(self.clusters[shard].now),
                on_processed=self._on_processed,
            )
            for member in range(self.members)
        ]
        self.clusters.append(cluster)
        self.frontends.append(row)

    # ------------------------------------------------------------------
    # liveness bookkeeping
    # ------------------------------------------------------------------

    def live_members(self, shard: int) -> list[int]:
        """Members of ``shard`` whose frontends are still alive."""
        return [
            m for m in range(self.members) if (shard, m) not in self._dead
        ]

    def _bridge_agent(self, shard: int) -> int:
        """The shard's bridged-traffic injector: lowest live member."""
        live = self.live_members(shard)
        if not live:
            raise ProtocolError(f"shard {shard} has no live frontend")
        return live[0]

    def _ingress_member(self, client_id: int, shard: int) -> int:
        return self.router.ingress_member(
            client_id, self.members, alive=self.live_members(shard)
        )

    def _live_frontends(self):
        for shard, row in enumerate(self.frontends):
            for member, frontend in enumerate(row):
                if (shard, member) not in self._dead:
                    yield frontend

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def connect(self, client_id: int, *, credit: int = 32) -> ClientSession:
        """Open a session: HELLO to the home frontend, absorb its ack."""
        if client_id in self.sessions:
            raise ProtocolError(f"c{client_id} is already connected")
        if client_id == HANDOFF_ORIGIN:
            raise ProtocolError("client id reserved for handoff markers")
        session = ClientSession(client_id, credit=credit)
        shard, member = self.router.home_for(client_id, self.members)
        if (shard, member) in self._dead:
            member = self.router.successor_member(
                client_id, tuple(self.live_members(shard))
            )
        self._home[client_id] = (shard, member)
        self.sessions[client_id] = session
        frontend = self.frontends[shard][member]
        hello = self._wire(session.hello())
        ack = self._wire(frontend.on_hello(hello))
        session.on_ack(ack)
        self.registry.set_gauge("svc.sessions.active", len(self.sessions))
        return session

    def reconnect(self, client_id: int) -> None:
        """Voluntarily re-HELLO at the current home (same negotiated
        resume handshake as failover; replays anything unacked)."""
        session = self._session(client_id)
        shard, member = self._home[client_id]
        if (shard, member) in self._dead:
            raise ProtocolError(
                f"c{client_id}'s home is dead; use fail_frontend-driven failover"
            )
        frontend = self.frontends[shard][member]
        hello = self._wire(session.hello())
        ack = self._wire(frontend.on_hello(hello))
        for pub in session.on_ack(ack):
            self._replay_ingress(self._wire(pub))

    def subscribe(self, client_id: int, topics: tuple[bytes, ...]) -> tuple[int, ...]:
        """Subscribe the session to ``topics``; returns the shards its
        delivery streams now span."""
        session = self._session(client_id)
        by_shard: dict[int, set[bytes]] = {}
        for topic in topics:
            by_shard.setdefault(self.router.shard_for(topic), set()).add(topic)
        for shard, shard_topics in by_shard.items():
            member = self._stream_member.setdefault(
                (client_id, shard), self._ingress_member(client_id, shard)
            )
            self._subscriptions.setdefault((client_id, shard), set()).update(
                shard_topics
            )
            for topic in shard_topics:
                self._topic_subs.setdefault(topic, set()).add(client_id)
            # A fresh stream must open at the session's current epoch
            # for this shard (nonzero if an earlier stream here was
            # re-anchored away and back); widening ignores it.
            self.frontends[shard][member].subscribe(
                client_id, shard_topics, epoch=session.stream_epoch(shard)
            )
        return tuple(sorted(by_shard))

    def publish(self, client_id: int, topics: tuple[bytes, ...], payload: bytes = b"") -> bool:
        """Publish on behalf of a session.

        Returns True when the publish entered the group tier now, False
        when the session queued it behind its window (a later ack
        releases and routes it automatically).
        """
        session = self._session(client_id)
        pdu = session.publish(topics, payload)
        if pdu is None:
            return False
        self._ingress(self._wire(pdu))
        return True

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _ingress(self, pub: ClientPublish) -> None:
        """Home-validate one publish and inject it into its shards."""
        shard, member = self._home[pub.client_id]
        if (shard, member) in self._dead:
            # The PDU raced the crash: lost on the wire.  The client
            # retains it unacked; failover replays it at the successor.
            self.dropped_pdus += 1
            return
        envelope = self.frontends[shard][member].on_publish(pub)
        dests = self.router.shards_for(envelope.topics)
        if len(dests) == 1:
            ingress = self._ingress_member(pub.client_id, dests[0])
            self.frontends[dests[0]][ingress].inject(envelope)
            return
        # Multi-shard: bridge-stamp, then inject through every
        # destination's bridge agent.  Stamping and injecting
        # atomically here IS the stamp-order injection rule: each
        # shard's bridged chain grows in stamp order.
        stamp = self.bridge.stamp(dests)
        bridged = envelope.with_bridge(stamp, dests)
        self._multi_pending[bridged.msg_id] = set(dests)
        for dest in dests:
            self.frontends[dest][self._bridge_agent(dest)].inject(bridged)
        self.registry.count("svc.bridge.stamped")

    def _on_processed(self, envelope: Envelope, shard: int) -> None:
        """A frontend saw one of its injected envelope copies processed
        in ``shard``.

        Bridged envelopes ack only once *every* destination shard has
        processed a copy (publish-level uniformity for the client);
        the per-shard set makes duplicate copies — an original and its
        salvaged re-injection — count once.
        """
        if envelope.bridged:
            awaiting = self._multi_pending.get(envelope.msg_id)
            if awaiting is not None:
                awaiting.discard(shard)
                if awaiting:
                    return
                del self._multi_pending[envelope.msg_id]
        home = self._home.get(envelope.origin)
        if home is None or home in self._dead:
            # A handoff marker (no home), or the ack raced the home's
            # death — the failover replay re-derives it from the
            # shards' processed state.
            return
        self.frontends[home[0]][home[1]].on_processed_elsewhere(envelope)

    # ------------------------------------------------------------------
    # the shuttle: frontends <-> sessions over real wire bytes
    # ------------------------------------------------------------------

    def pump(self) -> int:
        """Shuttle pending client PDUs until none remain.

        Every PDU is encoded and re-decoded through the global wire
        registry, so the client tier exercises the same codecs a socket
        deployment would.  Returns the number of PDUs moved.
        """
        moved = 0
        progress = True
        while progress:
            progress = False
            for frontend in list(self._live_frontends()):
                for client_id, pdu in frontend.drain_outbox():
                    self._to_client(client_id, self._wire(pdu))
                    moved += 1
                    progress = True
        self.pdus_moved += moved
        return moved

    def _to_client(self, client_id: int, pdu: object) -> None:
        session = self.sessions.get(client_id)
        if session is None:
            return  # session closed while deliveries were in flight
        if isinstance(pdu, ClientDeliver):
            ack = session.on_deliver(pdu)
            if ack is not None:
                member = self._stream_member[(client_id, pdu.shard)]
                if (pdu.shard, member) not in self._dead:
                    self.frontends[pdu.shard][member].on_deliver_ack(self._wire(ack))
        elif isinstance(pdu, ClientAck) and pdu.kind == ACK_PUBLISH:
            for released in session.on_ack(pdu):
                self._ingress(self._wire(released))
        elif isinstance(pdu, ClientAck) and pdu.kind == ACK_DELIVER:
            raise ProtocolError("delivery ack addressed to a client")
        else:
            raise ProtocolError(f"unroutable client PDU {pdu!r}")

    def _wire(self, pdu: object) -> object:
        """One wire round-trip (encode + decode) through the registry."""
        return global_registry.decode(global_registry.encode(pdu))

    # ------------------------------------------------------------------
    # failover (PROTOCOL §14.7)
    # ------------------------------------------------------------------

    def fail_frontend(self, shard: int, member: int) -> None:
        """Kill one frontend's member and fail all its duties over.

        The sequence is the drain discipline end to end:

        1. Crash the member (mid-run, via the shard's fault plan) and
           discard the dead frontend's outbox — those PDUs are lost on
           the wire, like a real crash loses them.
        2. Drain: every envelope injected anywhere before the crash
           resolves group-wide — processed at the live members, or
           discarded by the orphan rule (the victim's unbroadcast
           chain suffix).
        3. Salvage the victim's doubted envelopes in injection order:
           a copy the live members processed completes its ack path;
           a lost copy is re-injected through the successor chain
           (bridged copies keep their original stamp, and losses are a
           stamp-suffix of the dead agent's chain, so per-shard stamp
           monotonicity survives).
        4. Re-home the victim's sessions at a live successor via the
           negotiated resume handshake, replaying unacked publishes
           (with a triage that never double-injects what the group
           already carries).
        5. Re-anchor the victim's delivery streams at a successor with
           a bumped epoch and a full history replay; the clients'
           per-shard dedupe keeps the streams duplicate-free.
        """
        if (shard, member) in self._dead:
            raise ProtocolError(f"frontend s{shard}/m{member} is already dead")
        live = self.live_members(shard)
        if (len(live) - 1) * 2 <= self.members:
            raise ProtocolError(
                f"killing s{shard}/m{member} would cost shard {shard} its majority"
            )
        victim = self.frontends[shard][member]
        self.clusters[shard].crash(ProcessId(member))
        self._dead.add((shard, member))
        self.failovers += 1
        victim.drain_outbox()  # lost with the crash
        self.registry.count("svc.failover", shard=shard)
        self.drain()
        doubted = victim.doubted()
        victim.forget_pending()
        for envelope in doubted:
            self._salvage(shard, envelope)
        for client_id, home in list(self._home.items()):
            if home == (shard, member):
                self._failover_session(client_id, shard)
        for (client_id, stream_shard), agent in list(self._stream_member.items()):
            if stream_shard == shard and agent == member:
                self._reattach_stream(client_id, shard)

    def _salvage(self, shard: int, envelope: Envelope) -> None:
        """Resolve one doubted envelope of a dead injector (post-drain)."""
        if self._seen_in_shard(shard, envelope.msg_id):
            # Processed before the crash — only the ack path died with
            # the injector.  Complete it.
            self._on_processed(envelope, shard)
            return
        self.registry.count("svc.salvage.reinjected", shard=shard)
        if envelope.bridged:
            target = self._bridge_agent(shard)
        else:
            target = self._ingress_member(envelope.origin, shard)
        self.frontends[shard][target].inject(envelope)

    def _failover_session(self, client_id: int, shard: int) -> None:
        """Re-home one stranded session: negotiated re-HELLO + replay."""
        successor = self.router.successor_member(
            client_id, tuple(self.live_members(shard))
        )
        self._home[client_id] = (shard, successor)
        session = self.sessions[client_id]
        frontend = self.frontends[shard][successor]
        hello = self._wire(session.hello())
        ack = self._wire(frontend.on_hello(hello))
        for pub in session.on_ack(ack):
            self._replay_ingress(self._wire(pub))

    def _replay_ingress(self, pub: ClientPublish) -> None:
        """Route one replayed publish without duplicating group work.

        The new home re-validates and re-wraps it (keeping the
        contiguity chain), then a triage decides per destination:
        already tracked in flight — leave it; processed somewhere in
        the shard — count it (uniform atomicity completes it
        everywhere); pending at a live injector — its notification is
        coming; truly absent — inject.
        """
        shard, member = self._home[pub.client_id]
        envelope = self.frontends[shard][member].on_publish(pub)
        msg_id = envelope.msg_id
        if msg_id in self._multi_pending:
            return  # in flight and tracked; acks will reach the new home
        dests = self.router.shards_for(envelope.topics)
        missing = [d for d in dests if not self._seen_in_shard(d, msg_id)]
        if not missing:
            self.frontends[shard][member].on_processed_elsewhere(envelope)
            return
        if len(dests) == 1:
            dest = dests[0]
            if not self._inflight_in_shard(dest, msg_id):
                self.frontends[dest][self._ingress_member(pub.client_id, dest)].inject(
                    envelope
                )
            return
        self._multi_pending[msg_id] = set(missing)
        to_inject = [d for d in missing if not self._inflight_in_shard(d, msg_id)]
        if to_inject:
            stamp = self.bridge.stamp(dests)
            bridged = envelope.with_bridge(stamp, dests)
            for dest in to_inject:
                self.frontends[dest][self._bridge_agent(dest)].inject(bridged)

    def _reattach_stream(self, client_id: int, shard: int) -> None:
        """Move one delivery stream to a live successor (new epoch,
        full-history replay, client-side dedupe)."""
        topics = self._subscriptions.get((client_id, shard))
        if not topics:
            self._stream_member.pop((client_id, shard), None)
            return
        successor = self.router.successor_member(
            client_id, tuple(self.live_members(shard))
        )
        self._stream_member[(client_id, shard)] = successor
        session = self.sessions[client_id]
        epoch = session.reanchor(shard)
        self.frontends[shard][successor].subscribe(
            client_id, set(topics), epoch=epoch, replay=True
        )

    def _seen_in_shard(self, shard: int, msg_id: tuple[int, int]) -> bool:
        """Was this publish processed by any live member of ``shard``?
        (Processed anywhere ⇒ uniform atomicity completes it at every
        live member; post-drain they already agree.)"""
        return any(
            msg_id in self.frontends[shard][m].seen
            for m in self.live_members(shard)
        )

    def _inflight_in_shard(self, shard: int, msg_id: tuple[int, int]) -> bool:
        """Is a copy still pending at a live injector of ``shard``?"""
        return any(
            msg_id in self.frontends[shard][m]._pending
            for m in self.live_members(shard)
        )

    # ------------------------------------------------------------------
    # rebalancing: ring changes + topic handoff (PROTOCOL §14.8)
    # ------------------------------------------------------------------

    def add_shard(self) -> int:
        """Grow the ring by one shard and hand its topics over.

        Builds the new group + frontends, extends the bridge's clock
        vector, and migrates the ~1/S of the subscribed topic space
        whose ownership moved.  Returns the new shard's index.
        """
        self.drain()
        before = self.router.assignment(self._topic_subs)
        shard = self.router.add_shard()
        self.bridge.grow()
        self._build_shard(shard)
        self.shards += 1
        self.registry.set_gauge("svc.shards", self.shards)
        after = self.router.assignment(before)
        self._migrate(self.router.ownership_delta(before, after))
        return shard

    def remove_shard(self, shard: int) -> None:
        """Retire a shard from the ring and hand its topics over.

        The group itself keeps running (it must: it still drains its
        residual traffic and serves as a bridge destination for the
        handoff fences), but no topic routes to it afterwards.
        """
        self.drain()
        before = self.router.assignment(self._topic_subs)
        self.router.remove_shard(shard)
        after = self.router.assignment(before)
        self._migrate(self.router.ownership_delta(before, after))

    def _migrate(self, moves: dict[bytes, tuple[int, int]]) -> None:
        """Execute one ownership delta: fences first, then the moves.

        The tier is already drained (callers guarantee it), so no
        envelope naming a moving topic is in flight.  A bridged
        *handoff marker* then crosses each (old, new) pair through the
        causal bridge: it anchors the handoff in both shards' bridge
        logs — every bridged message before it belongs to the old
        ownership, everything after to the new — which is what
        ``check_bridge_ordering`` audits across the move.  Finally the
        subscriptions move (a widened or fresh stream on the new
        shard; no replay — pre-move history was delivered from the old
        shard) and the fences drain.
        """
        if not moves:
            return
        pairs = sorted({(old, new) for old, new in moves.values() if old != new})
        for old, new in pairs:
            self._handoff_seq += 1
            dests = tuple(sorted((old, new)))
            marker = Envelope(HANDOFF_ORIGIN, self._handoff_seq, (), b"handoff")
            stamp = self.bridge.stamp(dests)
            bridged = marker.with_bridge(stamp, dests)
            self._multi_pending[bridged.msg_id] = set(dests)
            for dest in dests:
                self.frontends[dest][self._bridge_agent(dest)].inject(bridged)
            self.registry.count("svc.handoff.fences")
        for topic, (old, new) in sorted(moves.items()):
            if old == new:
                continue
            for client_id in sorted(self._topic_subs.get(topic, ())):
                self._move_subscription(client_id, topic, old, new)
            self.moved_topics += 1
            self.registry.count("svc.handoff.topics")
        self.drain()

    def _move_subscription(self, client_id: int, topic: bytes, old: int, new: int) -> None:
        old_key = (client_id, old)
        topics = self._subscriptions.get(old_key)
        if topics is None or topic not in topics:
            return
        topics.discard(topic)
        old_member = self._stream_member.get(old_key)
        if old_member is not None and (old, old_member) not in self._dead:
            self.frontends[old][old_member].unsubscribe_topics(client_id, {topic})
        if not topics:
            del self._subscriptions[old_key]
        new_key = (client_id, new)
        self._subscriptions.setdefault(new_key, set()).add(topic)
        agent = self._stream_member.get(new_key)
        if agent is None:
            agent = self._ingress_member(client_id, new)
            self._stream_member[new_key] = agent
            session = self.sessions[client_id]
            self.frontends[new][agent].subscribe(
                client_id, {topic}, epoch=session.stream_epoch(new)
            )
        else:
            self.frontends[new][agent].subscribe(client_id, {topic})

    # ------------------------------------------------------------------
    # driving the simulations
    # ------------------------------------------------------------------

    def step(self, dt: float = _SUBRUN) -> int:
        """Advance every shard's simulation by ``dt`` and shuttle PDUs."""
        self._horizon = Time(float(self._horizon) + dt)
        for cluster in self.clusters:
            cluster.resume_rounds()
            cluster.kernel.run(until=self._horizon)
        return self.pump()

    def drain(self, *, max_steps: int = 4_000) -> None:
        """Advance until no envelope is in flight at any live frontend
        and every group is quiescent — the fault paths' fence.

        Unlike :meth:`run` this does not wait for client-side
        settlement (sessions stranded at a dead frontend cannot settle
        until failover completes, and failover needs this drain
        first).
        """
        for _ in range(max_steps):
            if not any(f._pending for f in self._live_frontends()) and all(
                c.quiescent() for c in self.clusters
            ):
                return
            self.step()
        raise ProtocolError(f"service tier did not drain in {max_steps} subruns")

    def settled(self) -> bool:
        """No client-tier work in flight anywhere."""
        if self._multi_pending:
            return False
        for frontend in self._live_frontends():
            if frontend._pending:
                return False
            if any(stream.parked for stream in frontend.streams.values()):
                return False
        return all(
            s.outstanding == 0 and s.queued == 0 for s in self.sessions.values()
        )

    def run(self, *, max_steps: int = 10_000, drain_subruns: int = 2) -> None:
        """Drive all shards until the client tier settles, then drain.

        Raises :class:`ProtocolError` if the tier cannot settle within
        ``max_steps`` subruns (wedged flow control, exhausted round
        budget).
        """
        for _ in range(max_steps):
            if self.settled() and all(c.quiescent() for c in self.clusters):
                break
            self.step()
        else:
            raise ProtocolError(f"service tier did not settle in {max_steps} subruns")
        for cluster in self.clusters:
            cluster.run_until_quiescent(drain_subruns=drain_subruns)
        self.pump()

    def refresh_health(self) -> tuple[int, ...]:
        """Fold every shard's failure-detector state into the router.

        A shard's ``suspected`` set is the union of what its live
        members' detectors report (:mod:`repro.detect`) plus members
        already crashed/left; the router drops shards without a live
        majority.  Returns the currently healthy shards.
        """
        for shard, cluster in enumerate(self.clusters):
            active = set(cluster.active_pids())
            down: set[ProcessId] = {
                ProcessId(i) for i in range(self.members) if ProcessId(i) not in active
            }
            for pid in active:
                detector = cluster.members[pid].detector
                if detector.tracks_suspicion:
                    down |= set(detector.suspects())
            self.router.observe_health(
                shard, members=self.members, suspected=len(down)
            )
            self.registry.set_gauge(
                "svc.shard.healthy", 1.0 if self.router.is_healthy(shard) else 0.0,
                shard=shard,
            )
        return self.router.healthy_shards()

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------

    def shard_streams(self, shard: int) -> dict[ProcessId, list]:
        """Per-member processed streams of one shard (checker input)."""
        cluster = self.clusters[shard]
        return {
            pid: cluster.services[pid].delivered for pid in cluster.active_pids()
        }

    def bridge_logs(self) -> dict[int, dict[ProcessId, list[tuple[tuple[int, int], int, tuple[int, ...]]]]]:
        """Bridged-traffic logs, ``shard -> member -> [(msg_id, stamp,
        dests)]`` — the input of ``check_bridge_ordering``."""
        logs: dict[int, dict[ProcessId, list[tuple[tuple[int, int], int, tuple[int, ...]]]]] = {}
        for shard, cluster in enumerate(self.clusters):
            logs[shard] = {
                pid: [
                    (env.msg_id, env.stamp, env.dests)
                    for env in self.frontends[shard][pid].bridge_log
                ]
                for pid in cluster.active_pids()
            }
        return logs

    def _session(self, client_id: int) -> ClientSession:
        session = self.sessions.get(client_id)
        if session is None:
            raise ProtocolError(f"c{client_id} is not connected")
        return session
