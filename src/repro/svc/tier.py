"""The sharded service: one publish/subscribe surface over many groups.

:class:`ShardedService` is the tentpole assembly (PROTOCOL §14): it
owns ``S`` independent URCGC groups (one :class:`SimCluster` each), a
:class:`Frontend` per member, a consistent-hash
:class:`~repro.svc.router.ShardRouter`, and the cross-shard
:class:`~repro.svc.bridge.CausalBridge`.  Clients connect through it
and never learn any of this — they see ``connect`` / ``subscribe`` /
``publish`` and a stream of deliveries.

Routing invariants the tier maintains:

* A session homes at one frontend (hash of the client id) — the only
  place its publish sequence is validated and acked.
* A client's single-shard publishes enter each shard through one
  *sticky ingress member* — one origin chain per (client, shard), so
  URCGC's per-origin ordering preserves client publish order.
* Multi-shard publishes are stamped by the bridge and injected through
  every destination shard's *bridge agent* (member 0) in stamp order —
  one origin chain for all bridged traffic per shard, so every member
  of every destination shard agrees with the bridge order.

All client PDUs cross the tier through the real wire codecs
(:data:`repro.net.wire.global_registry`) — the simulated transport is
in-process, the bytes are not.
"""

from __future__ import annotations

from ..core.config import UrcgcConfig
from ..errors import ConfigError, ProtocolError
from ..harness.cluster import SimCluster
from ..net.wire import global_registry
from ..obs import Registry
from ..types import ProcessId, Time
from .bridge import CausalBridge
from .envelope import Envelope
from .frontend import Frontend
from .router import ShardRouter
from .session import ClientSession
from .wire import ACK_DELIVER, ACK_PUBLISH, ClientAck, ClientDeliver, ClientPublish

__all__ = ["ShardedService"]

#: One subrun of simulated time (2 rounds x 0.5).
_SUBRUN = 1.0


class ShardedService:
    """``S`` URCGC groups behind one client-facing API.

    Parameters
    ----------
    shards, members:
        Topology: ``shards`` independent groups of ``members`` each.
    config:
        Per-shard group configuration (``n`` must equal ``members``);
        defaults to a plain ``UrcgcConfig(n=members)``.
    seed:
        Base determinism seed; shard ``s`` runs under ``seed + s``.
    registry:
        Service-tier metric surface (client/session/delivery counters,
        latency histograms).  Defaults to a fresh :class:`Registry`.
    grant_credit, deliver_window:
        Frontend flow-control defaults (see :class:`Frontend`).
    max_rounds:
        Per-shard round budget — generous, serve runs are long.
    """

    def __init__(
        self,
        shards: int,
        members: int = 3,
        *,
        config: UrcgcConfig | None = None,
        seed: int = 0,
        replicas: int = 64,
        registry: Registry | None = None,
        grant_credit: int = 32,
        deliver_window: int = 256,
        max_rounds: int = 20_000,
    ) -> None:
        if config is None:
            config = UrcgcConfig(n=members)
        if config.n != members:
            raise ConfigError(
                f"config.n={config.n} does not match members={members}"
            )
        self.shards = shards
        self.members = members
        self.config = config
        self.registry = registry if registry is not None else Registry()
        self.router = ShardRouter(shards, replicas=replicas)
        self.bridge = CausalBridge(shards)
        self.clusters: list[SimCluster] = [
            SimCluster(config, seed=seed + shard, max_rounds=max_rounds)
            for shard in range(shards)
        ]
        self.frontends: list[list[Frontend]] = [
            [
                Frontend(
                    shard,
                    member,
                    self.clusters[shard].services[member],
                    grant_credit=grant_credit,
                    deliver_window=deliver_window,
                    registry=self.registry,
                    clock=lambda shard=shard: float(self.clusters[shard].now),
                    on_processed=self._on_processed,
                )
                for member in range(members)
            ]
            for shard in range(shards)
        ]
        self.sessions: dict[int, ClientSession] = {}
        #: Home frontend of each connected session.
        self._home: dict[int, tuple[int, int]] = {}
        #: Delivery-agent member per (client, shard) stream.
        self._stream_member: dict[tuple[int, int], int] = {}
        #: Bridged publishes awaiting processing at every destination.
        self._multi_pending: dict[tuple[int, int], int] = {}
        #: Client PDUs shuttled through the wire codecs, both ways.
        self.pdus_moved = 0
        self._horizon: Time = Time(0.0)
        self.registry.set_gauge("svc.shards", shards)
        self.registry.set_gauge("svc.members_per_shard", members)

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def connect(self, client_id: int, *, credit: int = 32) -> ClientSession:
        """Open a session: HELLO to the home frontend, absorb its ack."""
        if client_id in self.sessions:
            raise ProtocolError(f"c{client_id} is already connected")
        session = ClientSession(client_id, credit=credit)
        home = self.router.home_for(client_id, self.members)
        self._home[client_id] = home
        self.sessions[client_id] = session
        frontend = self.frontends[home[0]][home[1]]
        hello = self._wire(session.hello())
        ack = self._wire(frontend.on_hello(hello))
        session.on_ack(ack)
        self.registry.set_gauge("svc.sessions.active", len(self.sessions))
        return session

    def subscribe(self, client_id: int, topics: tuple[bytes, ...]) -> tuple[int, ...]:
        """Subscribe the session to ``topics``; returns the shards its
        delivery streams now span."""
        self._session(client_id)
        by_shard: dict[int, set[bytes]] = {}
        for topic in topics:
            by_shard.setdefault(self.router.shard_for(topic), set()).add(topic)
        for shard, shard_topics in by_shard.items():
            member = self.router.ingress_member(client_id, self.members)
            self._stream_member[(client_id, shard)] = member
            self.frontends[shard][member].subscribe(client_id, shard_topics)
        return tuple(sorted(by_shard))

    def publish(self, client_id: int, topics: tuple[bytes, ...], payload: bytes = b"") -> bool:
        """Publish on behalf of a session.

        Returns True when the publish entered the group tier now, False
        when the session queued it behind its window (a later ack
        releases and routes it automatically).
        """
        session = self._session(client_id)
        pdu = session.publish(topics, payload)
        if pdu is None:
            return False
        self._ingress(self._wire(pdu))
        return True

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _ingress(self, pub: ClientPublish) -> None:
        """Home-validate one publish and inject it into its shards."""
        shard, member = self._home[pub.client_id]
        envelope = self.frontends[shard][member].on_publish(pub)
        dests = self.router.shards_for(envelope.topics)
        if len(dests) == 1:
            ingress = self.router.ingress_member(pub.client_id, self.members)
            self.frontends[dests[0]][ingress].inject(envelope)
            return
        # Multi-shard: bridge-stamp, then inject through every
        # destination's bridge agent (member 0).  Stamping and
        # injecting atomically here IS the stamp-order injection rule:
        # each shard's bridged chain grows in stamp order.
        stamp = self.bridge.stamp(dests)
        bridged = envelope.with_bridge(stamp, dests)
        self._multi_pending[bridged.msg_id] = len(dests)
        for dest in dests:
            self.frontends[dest][0].inject(bridged)
        self.registry.count("svc.bridge.stamped")

    def _on_processed(self, envelope: Envelope) -> None:
        """A frontend saw one of its injected envelopes processed.

        Bridged envelopes ack only once *every* destination shard has
        processed its copy (publish-level uniformity for the client).
        """
        if envelope.bridged:
            remaining = self._multi_pending.get(envelope.msg_id, 0) - 1
            if remaining > 0:
                self._multi_pending[envelope.msg_id] = remaining
                return
            self._multi_pending.pop(envelope.msg_id, None)
        shard, member = self._home[envelope.origin]
        self.frontends[shard][member].on_processed_elsewhere(envelope)

    # ------------------------------------------------------------------
    # the shuttle: frontends <-> sessions over real wire bytes
    # ------------------------------------------------------------------

    def pump(self) -> int:
        """Shuttle pending client PDUs until none remain.

        Every PDU is encoded and re-decoded through the global wire
        registry, so the client tier exercises the same codecs a socket
        deployment would.  Returns the number of PDUs moved.
        """
        moved = 0
        progress = True
        while progress:
            progress = False
            for shard_frontends in self.frontends:
                for frontend in shard_frontends:
                    for client_id, pdu in frontend.drain_outbox():
                        self._to_client(client_id, self._wire(pdu))
                        moved += 1
                        progress = True
        self.pdus_moved += moved
        return moved

    def _to_client(self, client_id: int, pdu: object) -> None:
        session = self.sessions.get(client_id)
        if session is None:
            return  # session closed while deliveries were in flight
        if isinstance(pdu, ClientDeliver):
            ack = session.on_deliver(pdu)
            if ack is not None:
                member = self._stream_member[(client_id, pdu.shard)]
                self.frontends[pdu.shard][member].on_deliver_ack(self._wire(ack))
        elif isinstance(pdu, ClientAck) and pdu.kind == ACK_PUBLISH:
            for released in session.on_ack(pdu):
                self._ingress(self._wire(released))
        elif isinstance(pdu, ClientAck) and pdu.kind == ACK_DELIVER:
            raise ProtocolError("delivery ack addressed to a client")
        else:
            raise ProtocolError(f"unroutable client PDU {pdu!r}")

    def _wire(self, pdu: object) -> object:
        """One wire round-trip (encode + decode) through the registry."""
        return global_registry.decode(global_registry.encode(pdu))

    # ------------------------------------------------------------------
    # driving the simulations
    # ------------------------------------------------------------------

    def step(self, dt: float = _SUBRUN) -> int:
        """Advance every shard's simulation by ``dt`` and shuttle PDUs."""
        self._horizon = Time(float(self._horizon) + dt)
        for cluster in self.clusters:
            cluster.kernel.run(until=self._horizon)
        return self.pump()

    def settled(self) -> bool:
        """No client-tier work in flight anywhere."""
        if self._multi_pending:
            return False
        if any(f._pending for row in self.frontends for f in row):
            return False
        return all(
            s.outstanding == 0 and s.queued == 0 for s in self.sessions.values()
        )

    def run(self, *, max_steps: int = 10_000, drain_subruns: int = 2) -> None:
        """Drive all shards until the client tier settles, then drain.

        Raises :class:`ProtocolError` if the tier cannot settle within
        ``max_steps`` subruns (wedged flow control, exhausted round
        budget).
        """
        for _ in range(max_steps):
            if self.settled() and all(c.quiescent() for c in self.clusters):
                break
            self.step()
        else:
            raise ProtocolError(f"service tier did not settle in {max_steps} subruns")
        for cluster in self.clusters:
            cluster.run_until_quiescent(drain_subruns=drain_subruns)
        self.pump()

    def refresh_health(self) -> tuple[int, ...]:
        """Fold every shard's failure-detector state into the router.

        A shard's ``suspected`` set is the union of what its live
        members' detectors report (:mod:`repro.detect`) plus members
        already crashed/left; the router drops shards without a live
        majority.  Returns the currently healthy shards.
        """
        for shard, cluster in enumerate(self.clusters):
            active = set(cluster.active_pids())
            down: set[ProcessId] = {
                ProcessId(i) for i in range(self.members) if ProcessId(i) not in active
            }
            for pid in active:
                detector = cluster.members[pid].detector
                if detector.tracks_suspicion:
                    down |= set(detector.suspects())
            self.router.observe_health(
                shard, members=self.members, suspected=len(down)
            )
            self.registry.set_gauge(
                "svc.shard.healthy", 1.0 if self.router.is_healthy(shard) else 0.0,
                shard=shard,
            )
        return self.router.healthy_shards()

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------

    def shard_streams(self, shard: int) -> dict[ProcessId, list]:
        """Per-member processed streams of one shard (checker input)."""
        cluster = self.clusters[shard]
        return {
            pid: cluster.services[pid].delivered for pid in cluster.active_pids()
        }

    def bridge_logs(self) -> dict[int, dict[ProcessId, list[tuple[tuple[int, int], int, tuple[int, ...]]]]]:
        """Bridged-traffic logs, ``shard -> member -> [(msg_id, stamp,
        dests)]`` — the input of ``check_bridge_ordering``."""
        logs: dict[int, dict[ProcessId, list[tuple[tuple[int, int], int, tuple[int, ...]]]]] = {}
        for shard, cluster in enumerate(self.clusters):
            logs[shard] = {
                pid: [
                    (env.msg_id, env.stamp, env.dests)
                    for env in self.frontends[shard][pid].bridge_log
                ]
                for pid in cluster.active_pids()
            }
        return logs

    def _session(self, client_id: int) -> ClientSession:
        session = self.sessions.get(client_id)
        if session is None:
            raise ProtocolError(f"c{client_id} is not connected")
        return session
