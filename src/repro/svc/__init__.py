"""The client/service tier: non-member users over sharded URCGC groups.

URCGC keeps every guarantee *inside* the group — n members, n² wire
cost, n-sized vectors.  The service tier (PROTOCOL §14) is how those
guarantees reach a population the group could never admit: clients
hold constant-size sessions against member *frontends*, topics shard
across many independent groups by consistent hashing, and multi-shard
publishes stay causally consistent through a Generic-Multicast bridge
that exchanges timestamps only among destination shards.

Layers, bottom-up:

* :mod:`repro.svc.wire` — the client PDUs (HELLO / PUB / DELIVER / ACK).
* :mod:`repro.svc.envelope` — the in-group envelope carrying client
  publishes as opaque group payloads.
* :mod:`repro.svc.session` — the client-side state machine.
* :mod:`repro.svc.frontend` — the member-side state machine.
* :mod:`repro.svc.router` / :mod:`repro.svc.bridge` — topic→shard
  placement and the cross-shard intersection rule.
* :mod:`repro.svc.tier` — the assembly: ``S`` simulated groups behind
  one publish/subscribe API.
* :mod:`repro.svc.groups` — call-style client/server roles layered on
  a single group (promoted from the pre-tier sketch).
* :mod:`repro.svc.serve` — the ``python -m repro serve`` demo harness.
* :mod:`repro.svc.chaos` — the failover/rebalance scenario family
  (frontend kills, ring changes) graded per guarantee (§14.7-14.8).
"""

from .bridge import CausalBridge
from .chaos import SVC_SCENARIOS, run_svc_scenario
from .envelope import ENVELOPE_MAGIC, Envelope
from .frontend import DeliveryStream, Frontend, HomeSession
from .groups import CallHandle, ClientServerGroup, Role, first_reply, majority_vote
from .router import ShardRouter
from .session import ClientSession, SessionState
from .tier import ShardedService
from .wire import (
    ACK_DELIVER,
    ACK_PUBLISH,
    MAX_TOPIC_LEN,
    MAX_TOPICS,
    ClientAck,
    ClientDeliver,
    ClientHello,
    ClientPublish,
)

__all__ = [
    "ACK_DELIVER",
    "ACK_PUBLISH",
    "CallHandle",
    "CausalBridge",
    "ClientAck",
    "ClientDeliver",
    "ClientHello",
    "ClientPublish",
    "ClientServerGroup",
    "ClientSession",
    "DeliveryStream",
    "ENVELOPE_MAGIC",
    "Envelope",
    "Frontend",
    "HomeSession",
    "MAX_TOPICS",
    "MAX_TOPIC_LEN",
    "Role",
    "SVC_SCENARIOS",
    "SessionState",
    "ShardRouter",
    "ShardedService",
    "first_reply",
    "majority_vote",
    "run_svc_scenario",
]
