"""The server-side frontend: one URCGC member serving many clients.

Every member of every shard group runs a :class:`Frontend` wrapped
around its :class:`~repro.core.service.UrcgcService`.  A frontend
plays two roles:

* **Home** for the sessions hashed to it: it validates HELLOs and
  sequence-numbered publishes, enforces the per-session publish
  window, wraps accepted publishes into
  :class:`~repro.svc.envelope.Envelope` payloads for the tier to
  route, and emits cumulative publish-acks as the group processes
  them (contiguity tracked across shards, since one session's
  publishes may fan out to many).
* **Delivery agent** for the subscription streams assigned to it: on
  every causal indication whose envelope matches a stream's topics it
  emits a :class:`~repro.svc.wire.ClientDeliver`, flow-controlled by
  the per-stream delivery window (over-window deliveries park until
  the client's cumulative delivery ack).

Failover makes both roles transferable (PROTOCOL §14.7): the home
role re-opens at a successor via the *negotiated resume handshake* —
a frontend that has no record of a session adopts the client's acked
frontier (durable by construction: clients only ack what a frontend
reported group-processed) and answers with it, never the client's
claimed ``resume_seq`` — and the delivery role re-anchors via
epoch-tagged streams replayed from the member's processed-envelope
log.  Because failover can re-inject an envelope the group already
carried, every frontend dedupes indications by publish identity: the
group may process a copy twice, the fan-out never does.

Frontends are sans-IO like the engine underneath: outbound PDUs
accumulate in :attr:`Frontend.outbox` for the driver (the sharded
tier, a test, a socket loop) to encode and carry.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..core.message import UserMessage
from ..core.service import UrcgcService
from ..errors import FlowControlBlocked, ProtocolError
from ..obs import Registry
from .envelope import Envelope
from .wire import (
    ACK_DELIVER,
    ACK_PUBLISH,
    ClientAck,
    ClientDeliver,
    ClientHello,
    ClientPublish,
)

__all__ = ["HomeSession", "DeliveryStream", "Frontend"]


class HomeSession:
    """Server-side state of one session homed at this frontend."""

    __slots__ = ("client_id", "credit", "last_seq", "acked", "processed")

    def __init__(self, client_id: int, credit: int, frontier: int) -> None:
        self.client_id = client_id
        self.credit = credit
        #: Highest publish sequence accepted (contiguous).
        self.last_seq = frontier
        #: Highest cumulative ack sent to the client.
        self.acked = frontier
        #: Processed-but-not-yet-contiguous publish seqs (multi-shard
        #: fan-out completes out of seq order).
        self.processed: set[int] = set()

    @property
    def outstanding(self) -> int:
        return self.last_seq - self.acked


class DeliveryStream:
    """One (session, shard) fan-out stream handled by this frontend."""

    __slots__ = ("client_id", "topics", "deliver_seq", "acked", "window", "parked", "epoch")

    def __init__(
        self, client_id: int, topics: set[bytes], window: int, epoch: int = 0
    ) -> None:
        self.client_id = client_id
        self.topics = topics
        #: Last delivery sequence emitted.
        self.deliver_seq = 0
        #: Last delivery sequence the client cumulatively acked.
        self.acked = 0
        self.window = window
        #: Deliveries withheld while the window is full.
        self.parked: deque[tuple[Envelope, bytes]] = deque()
        #: Stream generation; bumps when the stream re-anchors here.
        self.epoch = epoch

    @property
    def unacked(self) -> int:
        return self.deliver_seq - self.acked


class Frontend:
    """Client tier of one URCGC member (see module docstring)."""

    def __init__(
        self,
        shard: int,
        member: int,
        service: UrcgcService,
        *,
        grant_credit: int = 32,
        deliver_window: int = 256,
        registry: Registry | None = None,
        clock: Callable[[], float] | None = None,
        on_processed: Callable[[Envelope, int], None] | None = None,
    ) -> None:
        self.shard = shard
        self.member = member
        self.service = service
        self.grant_credit = grant_credit
        self.deliver_window = deliver_window
        self._registry = registry
        self._clock = clock
        #: Tier hook fired once per envelope copy this frontend
        #: *injected*, when the local member processes it (= globally
        #: ordered in this shard); receives ``(envelope, shard)``.
        self._on_processed = on_processed
        self.homed: dict[int, HomeSession] = {}
        self.streams: dict[int, DeliveryStream] = {}
        #: Outbound PDUs for the driver: ``(client_id, pdu)`` pairs.
        self.outbox: list[tuple[int, object]] = []
        #: Envelopes this frontend injected and still awaits, by
        #: publish identity, in injection order (= stamp order for
        #: bridged traffic) — the salvage set if this member dies.
        self._pending: dict[tuple[int, int], tuple[float, Envelope]] = {}
        #: Publish identities already processed at this member (the
        #: fan-out dedupe against failover re-injection).
        self.seen: set[tuple[int, int]] = set()
        #: Unique envelopes in processing order — replayed into
        #: re-anchored streams on stream failover.
        self.processed_log: list[Envelope] = []
        #: Bridged envelopes processed here, in processing order — the
        #: cross-shard ordering checker's input.
        self.bridge_log: list[Envelope] = []
        service.add_indication_handler(self._on_indication)

    # ------------------------------------------------------------------
    # home role: hello / publish / ack
    # ------------------------------------------------------------------

    def on_hello(self, hello: ClientHello) -> ClientAck:
        """Open or resume a session; returns the hello-ack.

        The negotiated resume handshake: the client's ``resume_seq``
        (its sent frontier) is *never* adopted.  For a session this
        frontend has no record of, the acked frontier the client
        presents is adopted instead — a client only acks what some
        frontend reported group-processed, so everything past it is
        legitimately in doubt and gets replayed.  Either way the ack's
        ``resume_seq`` answers with the frontier this frontend
        accepts, and the client replays the difference.
        """
        existing = self.homed.get(hello.client_id)
        if existing is None:
            session = HomeSession(
                hello.client_id,
                min(hello.credit, self.grant_credit),
                hello.acked_seq,
            )
            self.homed[hello.client_id] = session
            self._count("svc.sessions.opened")
        else:
            if hello.resume_seq < existing.last_seq:
                raise ProtocolError(
                    f"c{hello.client_id} resumes at {hello.resume_seq} but "
                    f"{existing.last_seq} publishes were already accepted "
                    "(client lost state it cannot replay)"
                )
            if hello.acked_seq > existing.acked:
                raise ProtocolError(
                    f"c{hello.client_id} claims acked {hello.acked_seq} beyond "
                    f"granted {existing.acked}"
                )
            session = existing
        return ClientAck(
            ACK_PUBLISH,
            session.client_id,
            0,
            session.acked,
            session.credit,
            resume_seq=session.last_seq,
        )

    def on_publish(self, pub: ClientPublish) -> Envelope:
        """Validate one publish; returns the envelope for the tier to
        route.  Raises on unknown sessions, sequence gaps/duplicates
        and window overruns (a correct client never sends these)."""
        session = self.homed.get(pub.client_id)
        if session is None:
            raise ProtocolError(f"publish from unknown session c{pub.client_id}")
        if pub.client_seq != session.last_seq + 1:
            raise ProtocolError(
                f"c{pub.client_id} publish seq {pub.client_seq}, expected "
                f"{session.last_seq + 1}"
            )
        if session.outstanding >= session.credit:
            raise FlowControlBlocked(
                f"c{pub.client_id} exceeded its window: "
                f"{session.outstanding}/{session.credit} outstanding"
            )
        session.last_seq = pub.client_seq
        self._count("svc.publish", shard=self.shard)
        return Envelope(pub.client_id, pub.client_seq, pub.topics, pub.payload)

    def inject(self, envelope: Envelope) -> None:
        """Submit a routed envelope to this member's group (fan-in).

        The frontend remembers the envelope; when it comes back as a
        causal indication the publish counts as processed in this
        shard and the origin's home frontend acks it (via the tier's
        ``on_processed`` hook).  If this member dies first, the
        retained envelopes are the tier's salvage set.
        """
        self._pending[envelope.msg_id] = (self._now(), envelope)
        self.service.data_rq(envelope.to_bytes())
        self._count("svc.injected", shard=self.shard)

    def doubted(self) -> list[Envelope]:
        """Injected-but-unresolved envelopes, in injection order."""
        return [envelope for _, envelope in self._pending.values()]

    def forget_pending(self) -> None:
        """Drop the pending set (the tier salvaged it elsewhere)."""
        self._pending.clear()

    def on_processed_elsewhere(self, envelope: Envelope) -> None:
        """Tier relay: one of this home's publishes was processed in
        every destination shard; advance the cumulative ack frontier.
        Idempotent — failover replay can re-announce old publishes."""
        session = self.homed.get(envelope.origin)
        if session is None or envelope.origin_seq <= session.acked:
            return
        session.processed.add(envelope.origin_seq)
        advanced = False
        while session.acked + 1 in session.processed:
            session.processed.remove(session.acked + 1)
            session.acked += 1
            advanced = True
        if advanced:
            self.outbox.append(
                (
                    session.client_id,
                    ClientAck(
                        ACK_PUBLISH,
                        session.client_id,
                        0,
                        session.acked,
                        session.credit,
                        resume_seq=session.last_seq,
                    ),
                )
            )

    # ------------------------------------------------------------------
    # delivery role: subscriptions / fan-out / delivery acks
    # ------------------------------------------------------------------

    def subscribe(
        self,
        client_id: int,
        topics: set[bytes],
        *,
        window: int | None = None,
        epoch: int = 0,
        replay: bool = False,
    ) -> None:
        """Attach (or widen) the client's delivery stream on this shard.

        With ``replay=True`` the stream re-anchors here at generation
        ``epoch``: a fresh stream is built and the member's whole
        processed-envelope log is replayed through it (window rules
        included), so nothing a dead predecessor delivered — or was
        about to deliver — is lost.  The client's per-shard dedupe
        drops what it already has; gap-freedom comes from replaying
        from the start of the log (PROTOCOL §14.7 documents the
        stable-subscription assumption this rests on).
        """
        stream = self.streams.get(client_id)
        if stream is None or replay:
            stream = DeliveryStream(
                client_id, set(topics), window or self.deliver_window, epoch
            )
            self.streams[client_id] = stream
            self._count("svc.streams.opened", shard=self.shard)
            if replay:
                self._count("svc.streams.reanchored", shard=self.shard)
                for envelope in self.processed_log:
                    self._fan_out(stream, envelope)
        else:
            stream.topics |= topics
            if window is not None:
                stream.window = window

    def unsubscribe_topics(self, client_id: int, topics: set[bytes]) -> None:
        """Narrow a stream (topic handoff moved these topics away)."""
        stream = self.streams.get(client_id)
        if stream is not None:
            stream.topics -= topics

    def on_deliver_ack(self, ack: ClientAck) -> None:
        """Absorb a client's cumulative delivery ack; un-park fan-out.

        Acks from an older stream epoch (in flight when the stream
        re-anchored) are ignored rather than corrupting the new
        stream's window accounting.
        """
        if ack.kind != ACK_DELIVER:
            raise ProtocolError(f"frontend received ack kind {ack.kind}")
        stream = self.streams.get(ack.client_id)
        if stream is None:
            raise ProtocolError(f"delivery ack for unknown stream c{ack.client_id}")
        if ack.epoch != stream.epoch:
            if ack.epoch < stream.epoch:
                return  # straggler from a previous stream life
            raise ProtocolError(
                f"c{ack.client_id} delivery ack from future epoch {ack.epoch} "
                f"(stream at {stream.epoch})"
            )
        if ack.ack_seq > stream.deliver_seq:
            raise ProtocolError(
                f"c{ack.client_id} acked delivery {ack.ack_seq} beyond "
                f"emitted {stream.deliver_seq}"
            )
        stream.acked = max(stream.acked, ack.ack_seq)
        while stream.parked and stream.unacked < stream.window:
            envelope, topic = stream.parked.popleft()
            self._emit_deliver(stream, envelope, topic)

    # ------------------------------------------------------------------
    # the causal indication path
    # ------------------------------------------------------------------

    def _on_indication(self, message: UserMessage) -> None:
        envelope = Envelope.from_bytes(message.payload)
        if envelope is None:
            return
        entry = self._pending.pop(envelope.msg_id, None)
        if entry is not None:
            injected_at, _ = entry
            if self._registry is not None and self._clock is not None:
                name = "svc.bridge.latency" if envelope.bridged else "svc.publish.latency"
                self._registry.observe(
                    name, self._now() - injected_at, shard=self.shard
                )
            if self._on_processed is not None:
                self._on_processed(envelope, self.shard)
        if envelope.msg_id in self.seen:
            # A failover re-injection of a copy the group already
            # carried: the processing fact above still counts, the
            # fan-out must not repeat.
            self._count("svc.dedup", shard=self.shard)
            return
        self.seen.add(envelope.msg_id)
        self.processed_log.append(envelope)
        if envelope.bridged:
            self.bridge_log.append(envelope)
        for stream in self.streams.values():
            self._fan_out(stream, envelope)

    def _fan_out(self, stream: DeliveryStream, envelope: Envelope) -> None:
        matched = next((t for t in envelope.topics if t in stream.topics), None)
        if matched is None:
            return
        if stream.unacked >= stream.window:
            stream.parked.append((envelope, matched))
            self._count("svc.deliver.parked", shard=self.shard)
        else:
            self._emit_deliver(stream, envelope, matched)

    def _emit_deliver(self, stream: DeliveryStream, envelope: Envelope, topic: bytes) -> None:
        stream.deliver_seq += 1
        self.outbox.append(
            (
                stream.client_id,
                ClientDeliver(
                    stream.client_id,
                    self.shard,
                    stream.deliver_seq,
                    envelope.origin,
                    envelope.origin_seq,
                    topic,
                    envelope.payload,
                    epoch=stream.epoch,
                ),
            )
        )
        self._count("svc.deliver", shard=self.shard)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def drain_outbox(self) -> list[tuple[int, object]]:
        out, self.outbox = self.outbox, []
        return out

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def _count(self, name: str, **labels: object) -> None:
        if self._registry is not None:
            self._registry.count(name, **labels)
