"""The client-side session state machine (PROTOCOL §14.2).

A :class:`ClientSession` is everything a *non-member* user holds: a
64-bit identity, a publish window, per-shard delivery cursors — all
constant-size, independent of group cardinality and client count (the
scalability point of the client tier: n-sized state stays inside the
server group).

Lifecycle::

    IDLE --hello()--> CONNECTING --publish-ack--> ACTIVE --close()--> CLOSED

The session *produces and consumes wire PDUs* and never touches the
group protocol: drivers (the sharded tier, tests, a real socket loop)
shuttle the encoded bytes between the session and its frontend.
"""

from __future__ import annotations

from collections import deque
from enum import Enum

from ..errors import FlowControlBlocked, ProtocolError
from .wire import ACK_DELIVER, ACK_PUBLISH, ClientAck, ClientDeliver, ClientHello, ClientPublish

__all__ = ["SessionState", "ClientSession"]


class SessionState(Enum):
    IDLE = "idle"
    CONNECTING = "connecting"
    ACTIVE = "active"
    CLOSED = "closed"


class ClientSession:
    """Client-side state machine for one session to one frontend.

    Parameters
    ----------
    client_id:
        The 64-bit client identity (the id space is the whole point:
        it is unrelated to group cardinality).
    credit:
        Publish window to request in the HELLO; the frontend's grant
        (carried in every publish-ack) is what actually binds.
    auto_ack:
        When True (default) :meth:`on_deliver` returns a cumulative
        delivery ack for the stream, ready to send; set False to ack
        manually via :meth:`ack_delivers` (batch acking).
    """

    __slots__ = (
        "client_id",
        "state",
        "requested_credit",
        "window",
        "next_seq",
        "acked",
        "auto_ack",
        "_queue",
        "delivered",
        "_deliver_cursor",
    )

    def __init__(self, client_id: int, *, credit: int = 32, auto_ack: bool = True) -> None:
        self.client_id = client_id
        self.state = SessionState.IDLE
        self.requested_credit = credit
        #: Granted publish window (0 until the hello-ack arrives).
        self.window = 0
        self.next_seq = 1
        #: Highest cumulative publish-ack received.
        self.acked = 0
        self.auto_ack = auto_ack
        self._queue: deque[tuple[tuple[bytes, ...], bytes]] = deque()
        #: Every delivery accepted, in arrival order (all streams).
        self.delivered: list[ClientDeliver] = []
        self._deliver_cursor: dict[int, int] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Publishes sent but not yet cumulatively acked."""
        return (self.next_seq - 1) - self.acked

    @property
    def queued(self) -> int:
        """Publishes waiting locally for window."""
        return len(self._queue)

    def deliver_cursor(self, shard: int) -> int:
        """Last delivery sequence accepted on ``shard``'s stream."""
        return self._deliver_cursor.get(shard, 0)

    def __repr__(self) -> str:
        return (
            f"ClientSession(c{self.client_id}, {self.state.value}, "
            f"seq={self.next_seq - 1}, acked={self.acked}, "
            f"outstanding={self.outstanding}, queued={self.queued})"
        )

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------

    def hello(self) -> ClientHello:
        """IDLE → CONNECTING; returns the HELLO to send."""
        if self.state is not SessionState.IDLE:
            raise ProtocolError(f"hello from state {self.state.value}")
        self.state = SessionState.CONNECTING
        return ClientHello(
            self.client_id, credit=self.requested_credit, resume_seq=self.next_seq - 1
        )

    def close(self) -> None:
        self.state = SessionState.CLOSED

    # ------------------------------------------------------------------
    # publishing (flow-controlled)
    # ------------------------------------------------------------------

    def publish(self, topics: tuple[bytes, ...], payload: bytes) -> ClientPublish | None:
        """Queue-behind-window publish.

        Returns the PDU to send now, or None when the window is full —
        the publish is then queued locally and released by a later
        :meth:`on_ack` (mirroring ``UrcgcService.data_rq``).
        """
        if self.state is not SessionState.ACTIVE:
            raise ProtocolError(f"publish from state {self.state.value}")
        if self.outstanding < self.window and not self._queue:
            return self._next_publish(topics, payload)
        self._queue.append((tuple(topics), payload))
        return None

    def try_publish(self, topics: tuple[bytes, ...], payload: bytes) -> ClientPublish:
        """Non-queueing variant: raises :class:`FlowControlBlocked`
        instead of building a backlog (mirrors ``try_data_rq``)."""
        if self.state is not SessionState.ACTIVE:
            raise ProtocolError(f"publish from state {self.state.value}")
        if self.outstanding >= self.window or self._queue:
            raise FlowControlBlocked(
                f"c{self.client_id} window full: {self.outstanding}/{self.window} "
                f"outstanding, {self.queued} queued"
            )
        return self._next_publish(topics, payload)

    def _next_publish(self, topics: tuple[bytes, ...], payload: bytes) -> ClientPublish:
        pub = ClientPublish(self.client_id, self.next_seq, tuple(topics), payload)
        self.next_seq += 1
        return pub

    # ------------------------------------------------------------------
    # inbound PDUs
    # ------------------------------------------------------------------

    def on_ack(self, ack: ClientAck) -> list[ClientPublish]:
        """Absorb a publish-ack; returns queued publishes the restored
        window now admits (send them)."""
        self._check_inbound(ack.client_id)
        if ack.kind != ACK_PUBLISH:
            raise ProtocolError(f"client received ack kind {ack.kind}")
        if self.state is SessionState.CONNECTING:
            self.state = SessionState.ACTIVE
        elif self.state is not SessionState.ACTIVE:
            raise ProtocolError(f"ack in state {self.state.value}")
        if ack.ack_seq > self.next_seq - 1:
            raise ProtocolError(
                f"c{self.client_id} acked up to {ack.ack_seq} but only "
                f"{self.next_seq - 1} were sent"
            )
        self.acked = max(self.acked, ack.ack_seq)
        if ack.credit > self.requested_credit:
            # A frontend never grants more than the HELLO asked for
            # (min(hello.credit, grant_credit)); a larger value is a
            # forged or corrupted ack and must not widen the window.
            raise ProtocolError(
                f"c{self.client_id} granted credit {ack.credit} exceeds "
                f"requested {self.requested_credit}"
            )
        self.window = ack.credit
        released = []
        while self._queue and self.outstanding < self.window:
            topics, payload = self._queue.popleft()
            released.append(self._next_publish(topics, payload))
        return released

    def on_deliver(self, deliver: ClientDeliver) -> ClientAck | None:
        """Absorb one delivery; enforces per-stream contiguity.

        Returns the cumulative delivery ack when ``auto_ack`` is set.
        """
        self._check_inbound(deliver.client_id)
        if self.state is not SessionState.ACTIVE:
            raise ProtocolError(f"deliver in state {self.state.value}")
        expected = self._deliver_cursor.get(deliver.shard, 0) + 1
        if deliver.deliver_seq != expected:
            raise ProtocolError(
                f"c{self.client_id} stream s{deliver.shard}: got deliver_seq "
                f"{deliver.deliver_seq}, expected {expected}"
            )
        self._deliver_cursor[deliver.shard] = deliver.deliver_seq
        self.delivered.append(deliver)
        if self.auto_ack:
            return self.ack_delivers(deliver.shard)
        return None

    def ack_delivers(self, shard: int) -> ClientAck:
        """Cumulative delivery ack for one shard stream."""
        return ClientAck(
            ACK_DELIVER,
            self.client_id,
            shard,
            self._deliver_cursor.get(shard, 0),
            0,
        )

    def _check_inbound(self, client_id: int) -> None:
        if client_id != self.client_id:
            raise ProtocolError(
                f"session c{self.client_id} received a PDU for c{client_id}"
            )
