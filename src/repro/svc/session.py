"""The client-side session state machine (PROTOCOL §14.2, §14.7).

A :class:`ClientSession` is everything a *non-member* user holds: a
64-bit identity, a publish window, per-shard delivery cursors — all
constant-size in the group cardinality and client count (the
scalability point of the client tier: n-sized state stays inside the
server group).

Lifecycle::

    IDLE --hello()--> CONNECTING --publish-ack--> ACTIVE --close()--> CLOSED
                          ^                          |
                          +------- hello() ----------+   (failover reopen)

A session may re-HELLO from ACTIVE or CLOSED (its home frontend died,
or the client voluntarily reconnects).  The resume handshake is
*negotiated*: the client reports what it sent and what was acked, the
frontend answers with the frontier it actually accepted
(``ClientAck.resume_seq``), and the client replays every retained
unacked publish past that offer — so a frontend that never saw the
session cannot silently void publishes.

The session *produces and consumes wire PDUs* and never touches the
group protocol: drivers (the sharded tier, tests, a real socket loop)
shuttle the encoded bytes between the session and its frontend.
"""

from __future__ import annotations

from collections import deque
from enum import Enum

from ..errors import FlowControlBlocked, ProtocolError
from .wire import ACK_DELIVER, ACK_PUBLISH, ClientAck, ClientDeliver, ClientHello, ClientPublish

__all__ = ["SessionState", "ClientSession"]


class SessionState(Enum):
    IDLE = "idle"
    CONNECTING = "connecting"
    ACTIVE = "active"
    CLOSED = "closed"


class ClientSession:
    """Client-side state machine for one session to one frontend.

    Parameters
    ----------
    client_id:
        The 64-bit client identity (the id space is the whole point:
        it is unrelated to group cardinality).
    credit:
        Publish window to request in the HELLO; the frontend's grant
        (carried in every publish-ack) is what actually binds.
    auto_ack:
        When True (default) :meth:`on_deliver` returns a cumulative
        delivery ack for the stream, ready to send; set False to ack
        manually via :meth:`ack_delivers` (batch acking).
    """

    __slots__ = (
        "client_id",
        "state",
        "requested_credit",
        "window",
        "next_seq",
        "acked",
        "auto_ack",
        "_queue",
        "_unacked",
        "delivered",
        "dup_filtered",
        "_deliver_cursor",
        "_epoch",
        "_seen",
    )

    def __init__(self, client_id: int, *, credit: int = 32, auto_ack: bool = True) -> None:
        self.client_id = client_id
        self.state = SessionState.IDLE
        self.requested_credit = credit
        #: Granted publish window (0 until the hello-ack arrives).
        self.window = 0
        self.next_seq = 1
        #: Highest cumulative publish-ack received.
        self.acked = 0
        self.auto_ack = auto_ack
        self._queue: deque[tuple[tuple[bytes, ...], bytes]] = deque()
        #: Sent-but-unacked publishes, retained for failover replay.
        self._unacked: deque[ClientPublish] = deque()
        #: Every delivery accepted, in arrival order (all streams).
        self.delivered: list[ClientDeliver] = []
        #: Replayed deliveries dropped by the per-shard dedupe.
        self.dup_filtered = 0
        self._deliver_cursor: dict[int, int] = {}
        #: Current stream generation per shard (bumps on re-anchor).
        self._epoch: dict[int, int] = {}
        #: Publish identities accepted per shard stream (the failover
        #: dedupe: a re-anchored stream replays history, the session
        #: keeps only what it has not seen on that shard).
        self._seen: dict[int, set[tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Publishes sent but not yet cumulatively acked."""
        return (self.next_seq - 1) - self.acked

    @property
    def queued(self) -> int:
        """Publishes waiting locally for window."""
        return len(self._queue)

    @property
    def retained(self) -> int:
        """Unacked publishes held for failover replay."""
        return len(self._unacked)

    def deliver_cursor(self, shard: int) -> int:
        """Last delivery sequence accepted on ``shard``'s stream."""
        return self._deliver_cursor.get(shard, 0)

    def stream_epoch(self, shard: int) -> int:
        """Current stream generation for ``shard`` (0 = never moved)."""
        return self._epoch.get(shard, 0)

    def __repr__(self) -> str:
        return (
            f"ClientSession(c{self.client_id}, {self.state.value}, "
            f"seq={self.next_seq - 1}, acked={self.acked}, "
            f"outstanding={self.outstanding}, queued={self.queued})"
        )

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------

    def hello(self) -> ClientHello:
        """IDLE/ACTIVE/CLOSED → CONNECTING; returns the HELLO to send.

        Reopening from ACTIVE or CLOSED is the failover path: the
        client lost (or abandoned) its frontend and re-HELLOs at a
        successor carrying both its sent frontier (``resume_seq``) and
        its acked frontier (``acked_seq``); the replies' resume offer
        decides what gets replayed.  Only a HELLO already in flight
        (CONNECTING) is rejected.
        """
        if self.state is SessionState.CONNECTING:
            raise ProtocolError(f"hello from state {self.state.value}")
        self.state = SessionState.CONNECTING
        return ClientHello(
            self.client_id,
            credit=self.requested_credit,
            resume_seq=self.next_seq - 1,
            acked_seq=self.acked,
        )

    def close(self) -> None:
        self.state = SessionState.CLOSED

    def reanchor(self, shard: int) -> int:
        """Start a new delivery-stream generation on ``shard``.

        Called when the stream moves to a successor frontend: the
        cursor restarts at 0, the epoch bumps (so stragglers from the
        dead frontend's stream are dropped, not mis-sequenced), and
        the per-shard seen-set keeps replayed history from
        re-appearing in :attr:`delivered`.  Returns the new epoch for
        the driver to hand to the successor.
        """
        epoch = self._epoch.get(shard, 0) + 1
        self._epoch[shard] = epoch
        self._deliver_cursor[shard] = 0
        return epoch

    # ------------------------------------------------------------------
    # publishing (flow-controlled)
    # ------------------------------------------------------------------

    def publish(self, topics: tuple[bytes, ...], payload: bytes) -> ClientPublish | None:
        """Queue-behind-window publish.

        Returns the PDU to send now, or None when the window is full —
        the publish is then queued locally and released by a later
        :meth:`on_ack` (mirroring ``UrcgcService.data_rq``).
        """
        if self.state is not SessionState.ACTIVE:
            raise ProtocolError(f"publish from state {self.state.value}")
        if self.outstanding < self.window and not self._queue:
            return self._next_publish(topics, payload)
        self._queue.append((tuple(topics), payload))
        return None

    def try_publish(self, topics: tuple[bytes, ...], payload: bytes) -> ClientPublish:
        """Non-queueing variant: raises :class:`FlowControlBlocked`
        instead of building a backlog (mirrors ``try_data_rq``)."""
        if self.state is not SessionState.ACTIVE:
            raise ProtocolError(f"publish from state {self.state.value}")
        if self.outstanding >= self.window or self._queue:
            raise FlowControlBlocked(
                f"c{self.client_id} window full: {self.outstanding}/{self.window} "
                f"outstanding, {self.queued} queued"
            )
        return self._next_publish(topics, payload)

    def _next_publish(self, topics: tuple[bytes, ...], payload: bytes) -> ClientPublish:
        pub = ClientPublish(self.client_id, self.next_seq, tuple(topics), payload)
        self.next_seq += 1
        self._unacked.append(pub)
        return pub

    # ------------------------------------------------------------------
    # inbound PDUs
    # ------------------------------------------------------------------

    def on_ack(self, ack: ClientAck) -> list[ClientPublish]:
        """Absorb a publish-ack; returns the publishes to (re)send.

        In ACTIVE these are queued publishes the restored window now
        admits.  On the hello-ack of a resume they additionally start
        with every retained publish past the frontend's resume offer
        (``ack.resume_seq``) — the replay of the negotiated handshake.
        """
        self._check_inbound(ack.client_id)
        if ack.kind != ACK_PUBLISH:
            raise ProtocolError(f"client received ack kind {ack.kind}")
        resuming = self.state is SessionState.CONNECTING
        if resuming:
            self.state = SessionState.ACTIVE
        elif self.state is not SessionState.ACTIVE:
            raise ProtocolError(f"ack in state {self.state.value}")
        if ack.ack_seq > self.next_seq - 1:
            raise ProtocolError(
                f"c{self.client_id} acked up to {ack.ack_seq} but only "
                f"{self.next_seq - 1} were sent"
            )
        if resuming and ack.resume_seq > self.next_seq - 1:
            raise ProtocolError(
                f"c{self.client_id} resume offer {ack.resume_seq} beyond "
                f"sent frontier {self.next_seq - 1}"
            )
        stale = ack.ack_seq < self.acked
        self.acked = max(self.acked, ack.ack_seq)
        while self._unacked and self._unacked[0].client_seq <= self.acked:
            self._unacked.popleft()
        if ack.credit > self.requested_credit:
            # A frontend never grants more than the HELLO asked for
            # (min(hello.credit, grant_credit)); a larger value is a
            # forged or corrupted ack and must not widen the window.
            raise ProtocolError(
                f"c{self.client_id} granted credit {ack.credit} exceeds "
                f"requested {self.requested_credit}"
            )
        if resuming or not stale:
            # A reordered stale ack must not rebind the window (its
            # credit snapshot is older than what already bound); the
            # hello-ack of a resume always rebinds.
            self.window = ack.credit
        replay: list[ClientPublish] = []
        if resuming:
            replay = [p for p in self._unacked if p.client_seq > ack.resume_seq]
        released = replay
        while self._queue and self.outstanding < self.window:
            topics, payload = self._queue.popleft()
            released.append(self._next_publish(topics, payload))
        return released

    def on_deliver(self, deliver: ClientDeliver) -> ClientAck | None:
        """Absorb one delivery; enforces per-stream contiguity.

        Accepted in CONNECTING too: over a real transport a fan-out
        deliver legitimately races the hello-ack.  Delivers from an
        older stream epoch (a dead frontend's stragglers) are dropped;
        within the current epoch, replayed content the session already
        accepted on this shard is counted in :attr:`dup_filtered`
        instead of re-appearing in :attr:`delivered`.

        Returns the cumulative delivery ack when ``auto_ack`` is set.
        """
        self._check_inbound(deliver.client_id)
        if self.state not in (SessionState.ACTIVE, SessionState.CONNECTING):
            raise ProtocolError(f"deliver in state {self.state.value}")
        current = self._epoch.get(deliver.shard, 0)
        if deliver.epoch != current:
            if deliver.epoch < current:
                return None  # straggler from a previous stream life
            raise ProtocolError(
                f"c{self.client_id} stream s{deliver.shard}: epoch "
                f"{deliver.epoch} from the future (at {current})"
            )
        expected = self._deliver_cursor.get(deliver.shard, 0) + 1
        if deliver.deliver_seq != expected:
            raise ProtocolError(
                f"c{self.client_id} stream s{deliver.shard}: got deliver_seq "
                f"{deliver.deliver_seq}, expected {expected}"
            )
        self._deliver_cursor[deliver.shard] = deliver.deliver_seq
        seen = self._seen.setdefault(deliver.shard, set())
        key = (deliver.origin, deliver.origin_seq)
        if key in seen:
            self.dup_filtered += 1
        else:
            seen.add(key)
            self.delivered.append(deliver)
        if self.auto_ack:
            return self.ack_delivers(deliver.shard)
        return None

    def ack_delivers(self, shard: int) -> ClientAck:
        """Cumulative delivery ack for one shard stream."""
        return ClientAck(
            ACK_DELIVER,
            self.client_id,
            shard,
            self._deliver_cursor.get(shard, 0),
            0,
            epoch=self._epoch.get(shard, 0),
        )

    def _check_inbound(self, client_id: int) -> None:
        if client_id != self.client_id:
            raise ProtocolError(
                f"session c{self.client_id} received a PDU for c{client_id}"
            )
