"""Consistent-hash shard routing with health tracking (PROTOCOL §14.3).

Topics are partitioned across many independent URCGC groups by a
consistent-hash ring: each shard owns ``replicas`` virtual points on a
64-bit circle, a topic maps to the first healthy shard clockwise of
its hash.  Adding/removing a shard, or routing around an unhealthy
one, therefore moves only ``~1/S`` of the topic space — the property
that makes dozens-of-shards deployments operable.

Health is fed from :mod:`repro.detect`: the tier summarizes each
shard's failure-detector state (suspected + crashed members) into
:meth:`ShardRouter.observe_health`; a shard without a live majority is
taken out of rotation until the detector clears.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

from ..errors import ConfigError, ProtocolError

__all__ = ["ShardRouter"]


def _point(key: bytes) -> int:
    """A stable 64-bit ring position (first 8 bytes of SHA-1)."""
    return int.from_bytes(hashlib.sha1(key).digest()[:8], "big")


class ShardRouter:
    """Maps topics (and client homes) onto shards.

    Parameters
    ----------
    shards:
        Number of independent URCGC groups.
    replicas:
        Virtual ring points per shard; more points, smoother balance.
    """

    def __init__(self, shards: int, *, replicas: int = 64) -> None:
        if shards < 1:
            raise ConfigError(f"need at least one shard, got {shards}")
        if replicas < 1:
            raise ConfigError(f"need at least one replica, got {replicas}")
        self.shards = shards
        self._healthy = [True] * shards
        ring: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                ring.append((_point(b"shard:%d#%d" % (shard, replica)), shard))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_shards = [shard for _, shard in ring]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shard_for(self, topic: bytes) -> int:
        """The healthy shard owning ``topic``."""
        start = bisect_right(self._ring_points, _point(b"topic:" + topic))
        size = len(self._ring_points)
        for step in range(size):
            shard = self._ring_shards[(start + step) % size]
            if self._healthy[shard]:
                return shard
        raise ProtocolError("no healthy shard available")

    def shards_for(self, topics: Iterable[bytes]) -> tuple[int, ...]:
        """The sorted destination-shard set of a (multi-topic) publish."""
        return tuple(sorted({self.shard_for(topic) for topic in topics}))

    def home_for(self, client_id: int, members: int) -> tuple[int, int]:
        """The ``(shard, member)`` frontend a client session homes at.

        Client homes hash over *all* shards (healthy or not is a
        routing concern for topics, not for session placement: the
        session's home shard group still runs even when the router
        stopped sending new topics its way).
        """
        point = _point(b"client:%d" % client_id)
        return (point % self.shards, (point >> 32) % members)

    def ingress_member(self, client_id: int, members: int) -> int:
        """The member a client's single-shard publishes enter through.

        Sticky per client: one origin chain per (client, shard), so a
        client's publishes into one shard are causally chained and
        never reorder (PROTOCOL §14.3).
        """
        return (_point(b"ingress:%d" % client_id) % (members - 1)) + 1 if members > 1 else 0

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def observe_health(
        self, shard: int, *, members: int, suspected: Sequence[int] | int
    ) -> bool:
        """Feed one shard's failure-detector summary.

        ``suspected`` is the count (or collection) of members the
        shard's detectors currently consider failed.  A shard keeps
        routing while a live majority remains; otherwise it leaves the
        ring until the detector clears.  Returns the new health bit.
        """
        down = suspected if isinstance(suspected, int) else len(set(suspected))
        healthy = (members - down) * 2 > members
        self._healthy[shard] = healthy
        return healthy

    def mark_unhealthy(self, shard: int) -> None:
        self._healthy[shard] = False

    def mark_healthy(self, shard: int) -> None:
        self._healthy[shard] = True

    def healthy_shards(self) -> tuple[int, ...]:
        return tuple(s for s in range(self.shards) if self._healthy[s])

    def is_healthy(self, shard: int) -> bool:
        return self._healthy[shard]
