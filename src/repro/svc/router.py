"""Consistent-hash shard routing with health tracking (PROTOCOL §14.3).

Topics are partitioned across many independent URCGC groups by a
consistent-hash ring: each shard owns ``replicas`` virtual points on a
64-bit circle, a topic maps to the first healthy shard clockwise of
its hash.  Adding/removing a shard, or routing around an unhealthy
one, therefore moves only ``~1/S`` of the topic space — the property
that makes dozens-of-shards deployments operable.

Health is fed from :mod:`repro.detect`: the tier summarizes each
shard's failure-detector state (suspected + crashed members) into
:meth:`ShardRouter.observe_health`; a shard without a live majority is
taken out of rotation until the detector clears.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Mapping, Sequence

from ..errors import ConfigError, ProtocolError

__all__ = ["ShardRouter"]


def _point(key: bytes) -> int:
    """A stable 64-bit ring position (first 8 bytes of SHA-1)."""
    return int.from_bytes(hashlib.sha1(key).digest()[:8], "big")


class ShardRouter:
    """Maps topics (and client homes) onto shards.

    Parameters
    ----------
    shards:
        Number of independent URCGC groups.
    replicas:
        Virtual ring points per shard; more points, smoother balance.
    """

    def __init__(self, shards: int, *, replicas: int = 64) -> None:
        if shards < 1:
            raise ConfigError(f"need at least one shard, got {shards}")
        if replicas < 1:
            raise ConfigError(f"need at least one replica, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        self._healthy = [True] * shards
        self._removed: set[int] = set()
        ring: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                ring.append((_point(b"shard:%d#%d" % (shard, replica)), shard))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_shards = [shard for _, shard in ring]

    # ------------------------------------------------------------------
    # ring changes
    # ------------------------------------------------------------------

    def add_shard(self) -> int:
        """Grow the ring by one shard; returns its index.

        Consistent hashing localizes the change: only topics whose
        clockwise-first point now lands on the new shard move (~1/S of
        the space); everything else keeps its owner.
        """
        shard = self.shards
        self.shards += 1
        self._healthy.append(True)
        for replica in range(self.replicas):
            point = _point(b"shard:%d#%d" % (shard, replica))
            index = bisect_right(self._ring_points, point)
            self._ring_points.insert(index, point)
            self._ring_shards.insert(index, shard)
        return shard

    def remove_shard(self, shard: int) -> None:
        """Retire a shard from the ring (decommission).

        Its virtual points leave the ring, so only the topics it owned
        move — each to the next shard clockwise.  Distinct from
        :meth:`mark_unhealthy` (transient): a removed shard never
        returns.
        """
        if not 0 <= shard < self.shards:
            raise ConfigError(f"no shard {shard} to remove")
        if shard in self._removed:
            raise ProtocolError(f"shard {shard} already removed")
        survivors = [
            s
            for s in range(self.shards)
            if s != shard and s not in self._removed and self._healthy[s]
        ]
        if not survivors:
            raise ProtocolError(f"removing shard {shard} would empty the ring")
        self._removed.add(shard)
        points = []
        shards_kept = []
        for point, owner in zip(self._ring_points, self._ring_shards):
            if owner != shard:
                points.append(point)
                shards_kept.append(owner)
        self._ring_points = points
        self._ring_shards = shards_kept

    def is_removed(self, shard: int) -> bool:
        return shard in self._removed

    # ------------------------------------------------------------------
    # ownership snapshots (the topic-handoff surface)
    # ------------------------------------------------------------------

    def assignment(self, topics: Iterable[bytes]) -> dict[bytes, int]:
        """Snapshot which shard owns each topic right now."""
        return {topic: self.shard_for(topic) for topic in topics}

    @staticmethod
    def ownership_delta(
        before: Mapping[bytes, int], after: Mapping[bytes, int]
    ) -> dict[bytes, tuple[int, int]]:
        """``topic -> (old, new)`` for every topic that changed owner
        between two :meth:`assignment` snapshots — the tier's handoff
        work list."""
        return {
            topic: (before[topic], after[topic])
            for topic in before
            if topic in after and after[topic] != before[topic]
        }

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shard_for(self, topic: bytes) -> int:
        """The healthy shard owning ``topic``."""
        start = bisect_right(self._ring_points, _point(b"topic:" + topic))
        size = len(self._ring_points)
        for step in range(size):
            shard = self._ring_shards[(start + step) % size]
            if self._healthy[shard]:
                return shard
        raise ProtocolError("no healthy shard available")

    def shards_for(self, topics: Iterable[bytes]) -> tuple[int, ...]:
        """The sorted destination-shard set of a (multi-topic) publish."""
        return tuple(sorted({self.shard_for(topic) for topic in topics}))

    def home_for(self, client_id: int, members: int) -> tuple[int, int]:
        """The ``(shard, member)`` frontend a client session homes at.

        Client homes hash over *all* shards (healthy or not is a
        routing concern for topics, not for session placement: the
        session's home shard group still runs even when the router
        stopped sending new topics its way).
        """
        point = _point(b"client:%d" % client_id)
        candidates = [s for s in range(self.shards) if s not in self._removed]
        return (candidates[point % len(candidates)], (point >> 32) % members)

    def ingress_member(
        self, client_id: int, members: int, *, alive: Sequence[int] | None = None
    ) -> int:
        """The member a client's single-shard publishes enter through.

        Sticky per client: one origin chain per (client, shard), so a
        client's publishes into one shard are causally chained and
        never reorder (PROTOCOL §14.3).  With ``alive`` the pick is
        restricted to the live members, still avoiding the bridge
        agent (the lowest live member) when others remain — failover
        moves the chain deterministically to a survivor.
        """
        pool: Sequence[int] = range(members) if alive is None else sorted(alive)
        if not pool:
            raise ProtocolError("no live member to ingress through")
        candidates = [m for m in pool if m != min(pool)] or list(pool)
        return candidates[_point(b"ingress:%d" % client_id) % len(candidates)]

    def successor_member(self, client_id: int, alive: Sequence[int]) -> int:
        """The live member a client's *home* fails over to (sticky
        hash over the survivors, same point as :meth:`home_for`)."""
        if not alive:
            raise ProtocolError("no live member to fail over to")
        pool = sorted(alive)
        point = _point(b"client:%d" % client_id)
        return pool[(point >> 32) % len(pool)]

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def observe_health(
        self, shard: int, *, members: int, suspected: Sequence[int] | int
    ) -> bool:
        """Feed one shard's failure-detector summary.

        ``suspected`` is the count (or collection) of members the
        shard's detectors currently consider failed.  A shard keeps
        routing while a live majority remains; otherwise it leaves the
        ring until the detector clears.  Returns the new health bit.
        """
        down = suspected if isinstance(suspected, int) else len(set(suspected))
        healthy = (members - down) * 2 > members
        self._healthy[shard] = healthy
        return healthy

    def mark_unhealthy(self, shard: int) -> None:
        self._healthy[shard] = False

    def mark_healthy(self, shard: int) -> None:
        self._healthy[shard] = True

    def healthy_shards(self) -> tuple[int, ...]:
        return tuple(
            s
            for s in range(self.shards)
            if self._healthy[s] and s not in self._removed
        )

    def is_healthy(self, shard: int) -> bool:
        return self._healthy[shard] and shard not in self._removed
