"""Call-style group structures (Section 3 of the paper), service tier.

"According to the group structures introduced by Birman, the algorithm
we present may apply to client server groups, through a proper
management of the reply messages, and to diffusion groups, by
multicasting messages to the full set of server and client processes."

:class:`ClientServerGroup` is the request/reply structure, promoted
from the pre-tier sketch in ``repro.core``: clients issue calls, every
server processes each call in the same causal order and replies, and
the caller resolves after ``h`` replies through a voting function
``v`` (the (h, v) pair of the Section 5 transport tuple, lifted to the
service level).  It layers on :class:`~repro.core.service.UrcgcService`
without touching the protocol, and registers via
``add_indication_handler`` so it composes with other consumers of the
same member — including a :class:`~repro.svc.frontend.Frontend`.

The old ``DiffusionGroup`` sketch is gone: diffusion — servers publish
to the full set of server and client processes — is the degenerate
single-topic, everyone-subscribed case of the sharded service tier
(:class:`~repro.svc.tier.ShardedService`), which additionally serves
*non-member* clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from itertools import count
from typing import Callable

from ..errors import ConfigError, ProtocolError
from ..net.wire import Reader, Writer
from ..types import ProcessId
from ..core.message import UserMessage
from ..core.service import UrcgcService

__all__ = [
    "Role",
    "CallHandle",
    "ClientServerGroup",
    "majority_vote",
    "first_reply",
]

_TAG_REQUEST = 2
_TAG_REPLY = 3

_call_ids = count(1)

VotingFunction = Callable[[list[bytes]], bytes]
RequestHandler = Callable[[ProcessId, bytes], bytes]


class Role(Enum):
    SERVER = "server"
    CLIENT = "client"


def majority_vote(replies: list[bytes]) -> bytes:
    """Voting function: the most frequent reply wins (ties: smallest)."""
    if not replies:
        raise ProtocolError("cannot vote over zero replies")
    counts: dict[bytes, int] = {}
    for reply in replies:
        counts[reply] = counts.get(reply, 0) + 1
    best = max(counts.items(), key=lambda item: (item[1], item[0]))
    return best[0]


def first_reply(replies: list[bytes]) -> bytes:
    """Voting function: take the first reply received."""
    if not replies:
        raise ProtocolError("cannot vote over zero replies")
    return replies[0]


@dataclass
class CallHandle:
    """Tracks one client call until ``h`` replies arrive."""

    call_id: int
    required_replies: int
    voting: VotingFunction
    replies: list[bytes] = field(default_factory=list)
    responders: list[ProcessId] = field(default_factory=list)
    result: bytes | None = None

    @property
    def resolved(self) -> bool:
        return self.result is not None

    def on_reply(self, sender: ProcessId, body: bytes) -> bool:
        """Absorb one reply; returns True when this reply resolved the
        call (late replies after resolution are ignored)."""
        if self.resolved:
            return False
        self.replies.append(body)
        self.responders.append(sender)
        if len(self.replies) >= self.required_replies:
            self.result = self.voting(self.replies)
            return True
        return False


def _encode(tag: int, call_id: int, sender: int, body: bytes) -> bytes:
    writer = Writer()
    writer.u8(tag)
    writer.u32(call_id)
    writer.u16(sender)
    writer.bytes_field(body)
    return writer.getvalue()


def _decode(payload: bytes) -> tuple[int, int, int, bytes]:
    reader = Reader(payload)
    tag = reader.u8()
    call_id = reader.u32()
    sender = reader.u16()
    body = reader.bytes_field()
    reader.expect_end()
    return tag, call_id, sender, body


class ClientServerGroup:
    """Request/reply structure over one urcgc group member.

    Parameters
    ----------
    service:
        The member's urcgc SAP.
    role:
        This member's role.
    servers:
        The pids acting as servers (identical at every member).
    handler:
        Server-side request handler ``(client_pid, body) -> reply``;
        required for servers, ignored for clients.
    """

    def __init__(
        self,
        service: UrcgcService,
        role: Role,
        servers: set[ProcessId],
        *,
        handler: RequestHandler | None = None,
    ) -> None:
        if not servers:
            raise ConfigError("a client-server group needs at least one server")
        self.service = service
        self.role = role
        self.servers = frozenset(servers)
        self.pid = service.member.pid
        if role is Role.SERVER and handler is None:
            raise ConfigError("servers must provide a request handler")
        if role is Role.SERVER and self.pid not in self.servers:
            raise ConfigError(f"p{self.pid} is not in the server set")
        self._handler = handler
        self._calls: dict[int, CallHandle] = {}
        self.served_count = 0
        service.add_indication_handler(self._on_indication)

    def call(
        self,
        body: bytes,
        *,
        h: int = 1,
        v: VotingFunction = first_reply,
    ) -> CallHandle:
        """Issue a request to the server set.

        The handle resolves once ``h`` server replies arrived, with
        ``v`` folding them into one result (Section 5's voting
        function).
        """
        if self.role is not Role.CLIENT:
            raise ProtocolError("servers do not issue calls")
        if not 1 <= h <= len(self.servers):
            raise ConfigError(
                f"h must be in [1, {len(self.servers)}], got {h}"
            )
        call_id = next(_call_ids)
        handle = CallHandle(call_id, h, v)
        self._calls[call_id] = handle
        self.service.data_rq(_encode(_TAG_REQUEST, call_id, self.pid, body))
        return handle

    def _on_indication(self, message: UserMessage) -> None:
        if not message.payload or message.payload[0] not in (_TAG_REQUEST, _TAG_REPLY):
            return  # other traffic on this member (handlers compose now)
        tag, call_id, sender, body = _decode(message.payload)
        if tag == _TAG_REQUEST:
            if self.role is Role.SERVER and sender != self.pid:
                assert self._handler is not None
                reply = self._handler(ProcessId(sender), body)
                self.served_count += 1
                self.service.data_rq(
                    _encode(_TAG_REPLY, call_id, self.pid, reply)
                )
        elif tag == _TAG_REPLY:
            handle = self._calls.get(call_id)
            if handle is not None:
                handle.on_reply(ProcessId(sender), body)
