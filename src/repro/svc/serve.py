"""The ``python -m repro serve`` demo: sharded chat at client scale.

Drives a :class:`~repro.svc.tier.ShardedService` with a simulated chat
workload — a client id space of millions (the point of the tier: ids
are unrelated to group cardinality), a sampled set of *active*
sessions, Zipf-popular topics
(:class:`~repro.workloads.generators.ZipfTopics`), and a configurable
fraction of multi-topic publishes that cross shards through the
causal bridge.

After the run every shard is audited with the Definition 3.2 checkers
(local causal order, Uniform Ordering, Uniform Atomicity) and the
bridged traffic with :func:`~repro.analysis.checkers.check_bridge_ordering`;
the client-tier counters land in one obs :class:`~repro.obs.Registry`
whose report the CLI prints (and CI archives).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.checkers import (
    check_bridge_ordering,
    check_local_causal_order,
    check_uniform_atomicity,
    check_uniform_ordering,
)
from ..errors import ConfigError, ProtocolError
from ..obs import Registry
from ..workloads.generators import ZipfTopics
from .tier import ShardedService

__all__ = ["ServeResult", "audit_tier", "serve", "registry_report"]


@dataclass
class ServeResult:
    """Outcome of one serve run, checker verdicts included."""

    shards: int
    members: int
    clients: int
    sessions: int
    publishes: int
    bridged: int
    deliveries: int
    pdus_moved: int
    quiesced: bool
    violations: tuple[str, ...] = ()
    failovers: int = 0
    moved_topics: int = 0
    registry: Registry = field(default_factory=Registry, repr=False)

    @property
    def ok(self) -> bool:
        return self.quiesced and not self.violations

    def describe(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        chaos = (
            f" failovers={self.failovers} moved_topics={self.moved_topics}"
            if self.failovers or self.moved_topics
            else ""
        )
        return (
            f"serve[{verdict}] shards={self.shards} clients={self.clients} "
            f"sessions={self.sessions} publishes={self.publishes} "
            f"(bridged={self.bridged}) deliveries={self.deliveries}{chaos} "
            f"violations={len(self.violations)}"
        )


def audit_tier(
    tier: ShardedService, *, quiesced: bool, include_bridge: bool = True
) -> list[str]:
    """Audit every shard with the Definition 3.2 checkers plus the
    cross-shard bridge-ordering checker; returns violation strings.

    Shared by :func:`serve` and the failover chaos scenarios
    (:mod:`repro.svc.chaos`, which grade the bridge as its own
    guarantee and pass ``include_bridge=False`` here).  Iterates
    ``tier.shards`` — the *current* count, so shards added by a
    mid-run rebalance are audited too.  Crashed members are excluded
    (their logs legitimately stop early); the converged-only checks
    (uniform ordering's completeness arm, uniform atomicity) apply
    only to quiesced runs.
    """
    violations: list[str] = []
    for shard in range(tier.shards):
        cluster = tier.clusters[shard]
        active = set(cluster.active_pids())
        streams = tier.shard_streams(shard)
        for pid, stream in streams.items():
            violations.extend(
                f"s{shard}: {v}"
                for v in check_local_causal_order(pid, stream).violations
            )
        if active:
            violations.extend(
                f"s{shard}: {v}"
                for v in check_uniform_ordering(streams, converged=quiesced).violations
            )
        if quiesced and active:
            log = cluster.delivery_log
            violations.extend(
                f"s{shard}: {v}"
                for v in check_uniform_atomicity(
                    log.generated_at,
                    {mid: set(by) for mid, by in log.processed_at.items()},
                    active,
                    discarded=log.discarded,
                ).violations
            )
        tier.registry.set_gauge(
            "svc.shard.processed", len(cluster.delivery_log.generated_at), shard=shard
        )
    if include_bridge:
        violations.extend(
            str(v) for v in check_bridge_ordering(tier.bridge_logs()).violations
        )
    return violations


def serve(
    *,
    shards: int = 4,
    members: int = 3,
    clients: int = 1_000_000,
    sessions: int = 48,
    messages: int = 160,
    topics: int = 64,
    zipf_s: float = 1.1,
    multi_ratio: float = 0.2,
    subscriptions: int = 3,
    seed: int = 0,
    kill_frontends: int = 0,
    ring_changes: int = 0,
    registry: Registry | None = None,
) -> ServeResult:
    """Run the sharded-chat demo and audit it.

    Parameters
    ----------
    shards, members:
        Service topology (``shards`` URCGC groups of ``members``).
    clients:
        Size of the client *id space*; sessions are sampled from it,
        so a million-client run stays cheap while exercising 64-bit
        identities end to end.
    sessions:
        Concurrently active client sessions (each connects, subscribes
        and publishes).
    messages:
        Total publishes across all sessions.
    topics, zipf_s:
        Topic universe and its Zipf popularity exponent.
    multi_ratio:
        Fraction of publishes naming several topics — the publishes
        that may span shards and go through the causal bridge.
    subscriptions:
        Topics per client's interest set.
    seed:
        Determinism: the same arguments reproduce the same run.
    kill_frontends:
        Frontends to kill spread across the run (PROTOCOL §14.7): each
        kill crashes the victim's group member mid-run and drives the
        full failover path — salvage, session re-homing, stream
        re-anchoring.  Kills that would cost a shard its live majority
        are skipped (and not counted).
    ring_changes:
        Shards to *add* spread across the run (PROTOCOL §14.8); each
        addition migrates the moved slice of the topic space through
        the causal-bridge handoff fence.
    """
    if clients < 1:
        raise ConfigError(f"need a positive client id space, got {clients}")
    if not 1 <= sessions:
        raise ConfigError(f"need at least one session, got {sessions}")
    if not 0.0 <= multi_ratio <= 1.0:
        raise ConfigError(f"multi_ratio must be in [0, 1], got {multi_ratio}")

    registry = registry if registry is not None else Registry()
    rng = random.Random(seed)
    tier = ShardedService(shards, members, seed=seed, registry=registry)
    zipf = ZipfTopics(topics, s=zipf_s, rng=rng)

    registry.set_gauge("svc.clients.registered", clients)

    # Sample the active population from the full id space: the session
    # count is what bounds the run's cost, the id space is what the
    # wire format and hashing must carry.
    population = min(sessions, clients)
    client_ids = (
        rng.sample(range(clients), population)
        if clients > population
        else list(range(clients))
    )
    for client_id in client_ids:
        tier.connect(client_id)
        tier.subscribe(client_id, zipf.subscription(min(subscriptions, topics)))

    # Spread the chaos events (frontend kills, ring growth) evenly
    # across the publish schedule so failover and handoff run against
    # live traffic, not a quiet tier.
    chaos_at: dict[int, list[str]] = {}
    events = ["kill"] * kill_frontends + ["grow"] * ring_changes
    for j, event in enumerate(events):
        index = (j + 1) * messages // (len(events) + 1)
        chaos_at.setdefault(index, []).append(event)

    bridged = 0
    for i in range(messages):
        client_id = client_ids[i % len(client_ids)]
        if rng.random() < multi_ratio and topics >= 2:
            publish_topics = zipf.draw_set(rng.randint(2, min(3, topics)))
        else:
            publish_topics = (zipf.draw(),)
        if len(tier.router.shards_for(publish_topics)) > 1:
            bridged += 1
        tier.publish(
            client_id, publish_topics, b"m%d from c%d" % (i, client_id)
        )
        for event in chaos_at.get(i, ()):
            if event == "kill":
                victim = _pick_victim(tier)
                if victim is not None:
                    tier.fail_frontend(*victim)
            else:
                tier.add_shard()
        # Interleave simulation progress with traffic so publish windows
        # recycle and deliveries stream out while the run is still hot.
        if (i + 1) % max(1, len(client_ids) // 2) == 0:
            tier.step()
            tier.refresh_health()

    quiesced = True
    try:
        tier.run()
    except ProtocolError:  # budget exhausted: report as non-quiescent, audit anyway
        quiesced = False

    violations = audit_tier(tier, quiesced=quiesced)

    deliveries = sum(len(s.delivered) for s in tier.sessions.values())
    registry.set_gauge("svc.deliveries.total", deliveries)
    registry.set_gauge("svc.pdus.moved", tier.pdus_moved)
    return ServeResult(
        shards=tier.shards,
        members=members,
        clients=clients,
        sessions=len(client_ids),
        publishes=messages,
        bridged=bridged,
        deliveries=deliveries,
        pdus_moved=tier.pdus_moved,
        quiesced=quiesced,
        violations=tuple(violations),
        failovers=tier.failovers,
        moved_topics=tier.moved_topics,
        registry=registry,
    )


def _pick_victim(tier: ShardedService) -> tuple[int, int] | None:
    """The most-homed frontend that can die without costing its shard
    a live majority (None when no kill is safe)."""
    homes: dict[tuple[int, int], int] = {}
    for home in tier._home.values():
        homes[home] = homes.get(home, 0) + 1
    candidates = sorted(
        (
            (shard, member)
            for shard in range(tier.shards)
            for member in tier.live_members(shard)
            if (len(tier.live_members(shard)) - 1) * 2 > tier.members
        ),
        key=lambda fm: (-homes.get(fm, 0), fm),
    )
    return candidates[0] if candidates else None


def registry_report(registry: Registry) -> str:
    """Render the service-tier registry as a plain-text report."""
    lines = ["service-tier registry", "====================="]
    for family, name, labels, metric in registry.walk():
        label_text = (
            "{" + ", ".join(f"{k}={v}" for k, v in labels) + "}" if labels else ""
        )
        if family == "counter":
            lines.append(f"counter   {name}{label_text} = {int(metric)}")
        elif family == "gauge":
            lines.append(f"gauge     {name}{label_text} = {float(metric):g}")
        elif family == "histogram":
            lines.append(f"histogram {name}{label_text}: {metric.summary()}")
        else:
            lines.append(f"series    {name}{label_text}: {len(metric)} samples")
    return "\n".join(lines)
