"""Failover and rebalance chaos scenarios over the sharded tier.

Where :mod:`repro.harness.adversarial` torments a *single* group with
scripted adversaries, this family torments the **service tier**: it
kills home/delivery frontends mid-run and mutates the consistent-hash
ring under live traffic, then grades what the tier promises
(PROTOCOL §14.7–14.8) guarantee by guarantee:

* **causal-delivery** — every shard still satisfies Definition 3.2
  (local causal order, Uniform Ordering, Uniform Atomicity) over its
  surviving members;
* **bridge-ordering** — bridged publishes are processed in one
  timestamp order at every pair of shards they share, across the kill
  and across the topic handoff fences;
* **acked-durability** — no acked publish is lost: every session ends
  fully acked with an empty retransmit buffer, and every accepted
  publish's content reached the group;
* **stream-integrity** — every delivery stream is duplicate-free and
  complete: each subscriber received every publish matching its
  subscription exactly once per subscribed shard, across frontend
  death and stream re-anchoring.

Results reuse :class:`~repro.harness.adversarial.ScenarioResult` /
:class:`~repro.harness.adversarial.GuaranteeReport`, so these
scenarios render and gate exactly like the single-group family, and
``python -m repro chaos --scenario all`` includes them.
"""

from __future__ import annotations

import random
import time

from ..analysis.checkers import check_bridge_ordering
from ..errors import ProtocolError
from ..harness.adversarial import GuaranteeReport, ScenarioResult
from .serve import _pick_victim, audit_tier
from .tier import ShardedService

__all__ = ["SVC_SCENARIOS", "run_svc_scenario"]

#: Scenario knobs: (shards, members, kills, grow, shrink, messages).
_SCRIPTS: dict[str, tuple[int, int, int, int, int, int]] = {
    # One home frontend dies mid-run, then a delivery agent: the
    # bread-and-butter failover path.
    "frontend-failover": (2, 5, 2, 0, 0, 60),
    # The ring grows and then retires its oldest shard, each change
    # handing the moved topic slice over through the bridge fence.
    "shard-rebalance": (2, 3, 0, 1, 1, 60),
    # Kills and growth together: repeated failovers interleaved with a
    # topic handoff, the worst case the tier documents surviving.
    "failover-storm": (2, 5, 3, 1, 0, 80),
}

_TOPICS = 12
_SESSIONS = 8
_SUBSCRIPTIONS = 3
_MULTI_RATIO = 0.25


def run_svc_scenario(name: str, *, seed: int = 0) -> ScenarioResult:
    """Run one named service-tier chaos scenario and grade it.

    Deterministic in ``(name, seed)``: the simulation clock drives
    everything, so reruns reproduce byte-identical outcomes.
    """
    try:
        shards, members, kills, grow, shrink, messages = _SCRIPTS[name]
    except KeyError:
        known = ", ".join(sorted(_SCRIPTS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
    started = time.perf_counter()
    rng = random.Random(seed)
    tier = ShardedService(shards, members, seed=seed)
    topics = [b"chaos/%d" % i for i in range(_TOPICS)]

    client_ids = rng.sample(range(1_000_000), _SESSIONS)
    subscriptions: dict[int, set[bytes]] = {}
    for client_id in client_ids:
        tier.connect(client_id)
        interest = set(rng.sample(topics, _SUBSCRIPTIONS))
        subscriptions[client_id] = interest
        tier.subscribe(client_id, tuple(sorted(interest)))

    # Chaos schedule: spread the scripted events across the publish
    # loop so every fault lands on a tier with traffic in flight.
    events = ["kill"] * kills + ["grow"] * grow + ["shrink"] * shrink
    chaos_at: dict[int, list[str]] = {}
    for j, event in enumerate(events):
        chaos_at.setdefault((j + 1) * messages // (len(events) + 1), []).append(event)

    published: list[tuple[int, tuple[bytes, ...], bytes]] = []
    bridged = 0
    for i in range(messages):
        client_id = client_ids[i % len(client_ids)]
        if rng.random() < _MULTI_RATIO:
            publish_topics = tuple(rng.sample(topics, 2))
        else:
            publish_topics = (rng.choice(topics),)
        payload = b"chaos-%d-c%d" % (i, client_id)
        if len(tier.router.shards_for(publish_topics)) > 1:
            bridged += 1
        tier.publish(client_id, publish_topics, payload)
        published.append((client_id, publish_topics, payload))
        for event in chaos_at.get(i, ()):
            if event == "kill":
                victim = _pick_victim(tier)
                if victim is not None:
                    tier.fail_frontend(*victim)
            elif event == "grow":
                tier.add_shard()
            else:
                tier.remove_shard(_oldest_ringed_shard(tier))
        if (i + 1) % (_SESSIONS // 2) == 0:
            tier.step()

    quiesced = True
    try:
        tier.run()
    except ProtocolError:
        # Failure to drain is itself a graded outcome: the judges run
        # anyway and every unsatisfied guarantee reports "degraded".
        quiesced = False

    guarantees = _judge(tier, subscriptions, published, quiesced=quiesced)
    evidence = {
        "publishes": len(published),
        "bridged": bridged,
        "deliveries": sum(len(s.delivered) for s in tier.sessions.values()),
        "failovers": tier.failovers,
        "moved_topics": tier.moved_topics,
        "dropped_pdus": tier.dropped_pdus,
        "dup_filtered": sum(s.dup_filtered for s in tier.sessions.values()),
    }
    return ScenarioResult(
        scenario=name,
        seed=seed,
        n=tier.shards * members,
        quiesced=quiesced,
        wall_time=time.perf_counter() - started,
        guarantees=guarantees,
        evidence=evidence,
    )


def _oldest_ringed_shard(tier: ShardedService) -> int:
    return next(s for s in range(tier.shards) if not tier.router.is_removed(s))


def _judge(
    tier: ShardedService,
    subscriptions: dict[int, set[bytes]],
    published: list[tuple[int, tuple[bytes, ...], bytes]],
    *,
    quiesced: bool,
) -> tuple[GuaranteeReport, ...]:
    """Grade the four tier guarantees over the final state.

    Every guarantee here is documented as *surviving* frontend death
    and ring changes — there are no violated-by-design rows in this
    family; any violation is a bug.
    """
    reports: list[GuaranteeReport] = []

    causal = audit_tier(tier, quiesced=quiesced, include_bridge=False)
    reports.append(
        _grade(
            "causal-delivery",
            violations=causal,
            degraded=not quiesced,
            detail_ok=f"{tier.shards} shards clean under Definition 3.2",
        )
    )

    bridge = [str(v) for v in check_bridge_ordering(tier.bridge_logs()).violations]
    reports.append(
        _grade(
            "bridge-ordering",
            violations=bridge,
            degraded=not quiesced,
            detail_ok="bridged stamp order agreed across all shard pairs",
        )
    )

    durability: list[str] = []
    for client_id, session in tier.sessions.items():
        sent = session.next_seq - 1
        if session.acked != sent:
            durability.append(
                f"c{client_id}: acked {session.acked} of {sent} publishes"
            )
        if session.retained:
            durability.append(
                f"c{client_id}: {session.retained} publishes still unacked"
            )
        if session.queued:
            durability.append(f"c{client_id}: {session.queued} publishes never sent")
    reports.append(
        _grade(
            "acked-durability",
            violations=durability,
            degraded=not quiesced,
            detail_ok=f"{len(published)} publishes fully acked, none lost",
        )
    )

    integrity: list[str] = []
    for client_id, session in tier.sessions.items():
        per_shard: dict[int, list[tuple[int, int]]] = {}
        for deliver in session.delivered:
            per_shard.setdefault(deliver.shard, []).append(
                (deliver.origin, deliver.origin_seq)
            )
        for shard, ids in per_shard.items():
            if len(ids) != len(set(ids)):
                integrity.append(
                    f"c{client_id} s{shard}: {len(ids) - len(set(ids))} duplicate "
                    "deliveries"
                )
        got = {d.payload for d in session.delivered}
        interest = subscriptions[client_id]
        for _, pub_topics, payload in published:
            if interest.intersection(pub_topics) and payload not in got:
                integrity.append(f"c{client_id}: never received {payload!r}")
    reports.append(
        _grade(
            "stream-integrity",
            violations=integrity,
            degraded=not quiesced,
            detail_ok="all streams duplicate-free and complete",
        )
    )
    return tuple(reports)


def _grade(
    guarantee: str, *, violations: list[str], degraded: bool, detail_ok: str
) -> GuaranteeReport:
    if violations:
        return GuaranteeReport(
            guarantee,
            "violated",
            "survived",
            "; ".join(violations[:3])
            + (f" (+{len(violations) - 3} more)" if len(violations) > 3 else ""),
        )
    if degraded:
        return GuaranteeReport(
            guarantee, "degraded", "survived", "run did not quiesce; partial audit"
        )
    return GuaranteeReport(guarantee, "survived", "survived", detail_ok)


#: name -> seed-parameterized factory (the adversarial registry wraps
#: these as async entries so ``--scenario all`` includes the family).
SVC_SCENARIOS = tuple(sorted(_SCRIPTS))
