"""The append-only write-ahead log.

Record framing (network byte order)::

    u32 length | u32 crc32(payload) | payload
    payload = u8 record_kind | wire-encoded PDU

``record_kind`` is one of :data:`~repro.core.rejoin.RECORD_GENERATED`
(an own message, logged *before* it is sent, so a sent message is
always in the log), :data:`~repro.core.rejoin.RECORD_PROCESSED` (a
peer message, logged at processing time — hence in causal order), or
:data:`~repro.core.rejoin.RECORD_DECISION` (an adopted decision,
wrapped as a :class:`~repro.core.message.DecisionMessage` so it reuses
the registered wire codec).

On open, :meth:`WriteAheadLog.open` scans the log sequentially and
truncates at the first torn record — short frame, crc mismatch, or
undecodable payload — which is exactly the state a crash mid-append
leaves behind.  Everything before the tear is intact by crc.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from ..core.decision import Decision
from ..core.message import DecisionMessage, UserMessage
from ..core.rejoin import RECORD_DECISION, RECORD_GENERATED, RECORD_PROCESSED
from ..errors import WireFormatError
from ..net.wire import decode_message, encode_message
from .backend import StorageBackend

__all__ = ["WalRecord", "WriteAheadLog"]

_HEADER = struct.Struct("!II")


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: ``(kind, pdu)``."""

    kind: int
    pdu: object

    def as_replay_tuple(self) -> tuple[int, object]:
        pdu = self.pdu
        if self.kind == RECORD_DECISION and isinstance(pdu, DecisionMessage):
            pdu = pdu.decision
        return self.kind, pdu


def encode_record(kind: int, pdu: object) -> bytes:
    payload = bytes([kind]) + encode_message(pdu)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """Append-only record log over one backend blob."""

    def __init__(self, backend: StorageBackend, name: str) -> None:
        self.backend = backend
        self.name = name
        #: Bytes dropped by torn-tail truncation at the last open().
        self.truncated_bytes = 0

    # -- append side ---------------------------------------------------
    #
    # Every append returns the framed bytes it wrote, so a caller that
    # is buffering the log tail during an in-flight snapshot
    # (``NodeStorage.begin_snapshot``) can keep the exact on-disk
    # framing without re-encoding.

    def append_generated(self, message: UserMessage) -> bytes:
        record = encode_record(RECORD_GENERATED, message)
        self.backend.append(self.name, record)
        return record

    def append_processed(self, message: UserMessage) -> bytes:
        record = encode_record(RECORD_PROCESSED, message)
        self.backend.append(self.name, record)
        return record

    def append_decision(self, decision: Decision) -> bytes:
        record = encode_record(RECORD_DECISION, DecisionMessage(decision))
        self.backend.append(self.name, record)
        return record

    def reset(self) -> None:
        """Truncate the log (called after a snapshot covers it)."""
        self.backend.write(self.name, b"")
        self.truncated_bytes = 0

    def rewrite(self, records: list[bytes]) -> None:
        """Atomically replace the log with the given framed records.

        Snapshot compaction: the log becomes exactly the tail appended
        while the snapshot was persisting.  One backend write, so a
        crash leaves either the old log or the new one — never a
        truncated-but-not-yet-rewritten window.
        """
        self.backend.write(self.name, b"".join(records))
        self.truncated_bytes = 0

    # -- recovery side -------------------------------------------------

    def open(self) -> list[WalRecord]:
        """Scan the log; truncate and drop a torn tail; return records."""
        blob = self.backend.read(self.name)
        if blob is None:
            self.truncated_bytes = 0
            return []
        records: list[WalRecord] = []
        pos = 0
        good = 0
        size = len(blob)
        while pos + _HEADER.size <= size:
            length, crc = _HEADER.unpack_from(blob, pos)
            start = pos + _HEADER.size
            end = start + length
            if length == 0 or end > size:
                break  # torn: header promised more bytes than exist
            payload = blob[start:end]
            if zlib.crc32(payload) != crc:
                break  # torn or corrupted mid-record
            kind = payload[0]
            if kind not in (RECORD_GENERATED, RECORD_PROCESSED, RECORD_DECISION):
                break
            try:
                pdu = decode_message(bytes(payload[1:]))
            except WireFormatError:
                break
            records.append(WalRecord(kind, pdu))
            pos = end
            good = end
        self.truncated_bytes = size - good
        if self.truncated_bytes:
            self.backend.write(self.name, bytes(blob[:good]))
        return records
