"""Member snapshots: serialization of the durable GMT state.

A snapshot is the :class:`~repro.core.rejoin.MemberState` (history
floors, ``last_processed`` tracker, group view, latest decision,
orphan marks and void ranges, incarnation) plus the node's full
delivered log and its round clock.  The delivered log doubles as the
history source on restore — messages above each origin's cleaning
floor are put back into the history, so the snapshot stores every
message exactly once.

Format: ``u32 crc32(body) | body``, with the body built from the
:mod:`repro.net.wire` primitives and the registered PDU codecs.
Snapshots are written atomically by the backend, so a crc mismatch
means external corruption, not a crash artifact — it raises
:class:`~repro.errors.StorageError` rather than being repaired.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..core.message import DecisionMessage, UserMessage
from ..core.rejoin import MemberState, build_member, export_state, replay
from ..errors import StorageError, WireFormatError
from ..net.wire import Reader, Writer, decode_message, encode_message
from ..types import ProcessId, SeqNo

__all__ = [
    "MemberSnapshot",
    "snapshot_of",
    "encode_snapshot",
    "decode_snapshot",
    "restore_member",
]

_VERSION = 1


@dataclass
class MemberSnapshot:
    """One serialized recovery point of a node."""

    state: MemberState
    delivered: tuple[UserMessage, ...] = ()
    round_no: int = 0

    @property
    def pid(self) -> ProcessId:
        return self.state.pid


def snapshot_of(member, delivered, round_no: int = 0) -> MemberSnapshot:
    """Build a snapshot of ``member`` with its delivered log."""
    return MemberSnapshot(
        state=export_state(member),
        delivered=tuple(delivered),
        round_no=round_no,
    )


def encode_snapshot(snapshot: MemberSnapshot) -> bytes:
    state = snapshot.state
    n = len(state.alive)
    writer = Writer()
    writer.u8(_VERSION)
    writer.u16(state.pid)
    writer.u16(n)
    writer.u32(state.incarnation)
    writer.u32(snapshot.round_no)
    writer.u32(state.own_last)
    for flag in state.alive:
        writer.boolean(flag)
    writer.bytes_field(encode_message(DecisionMessage(state.latest_decision)))
    writer.u32_list(
        state.tracker_last.get(ProcessId(k), SeqNo(0)) for k in range(n)
    )
    writer.u32_list(state.floors.get(ProcessId(k), SeqNo(0)) for k in range(n))
    gaps = [
        (origin, first, last)
        for origin in sorted(state.tracker_gaps)
        for first, last in state.tracker_gaps[origin]
    ]
    writer.u16(len(gaps))
    for origin, first, last in gaps:
        writer.u16(origin)
        writer.u32(first)
        writer.u32(last)
    marks = sorted(state.open_marks.items())
    writer.u16(len(marks))
    for origin, mark in marks:
        writer.u16(origin)
        writer.u32(mark)
    voids = [
        (origin, first, last)
        for origin in sorted(state.void_ranges)
        for first, last in state.void_ranges[origin]
    ]
    writer.u16(len(voids))
    for origin, first, last in voids:
        writer.u16(origin)
        writer.u32(first)
        writer.u32(last)
    writer.u32(len(snapshot.delivered))
    for message in snapshot.delivered:
        writer.bytes_field(encode_message(message))
    body = writer.getvalue()
    header = Writer()
    header.u32(zlib.crc32(body))
    return header.getvalue() + body


def decode_snapshot(blob: bytes) -> MemberSnapshot:
    try:
        return _decode_snapshot(blob)
    except (WireFormatError, IndexError, ValueError) as exc:
        raise StorageError(f"corrupted snapshot: {exc}") from exc


def _decode_snapshot(blob: bytes) -> MemberSnapshot:
    if len(blob) < 4:
        raise StorageError("snapshot too short for its checksum")
    reader = Reader(blob)
    crc = reader.u32()
    body = blob[4:]
    if zlib.crc32(body) != crc:
        raise StorageError("snapshot checksum mismatch")
    reader = Reader(body)
    version = reader.u8()
    if version != _VERSION:
        raise StorageError(f"unsupported snapshot version {version}")
    pid = ProcessId(reader.u16())
    n = reader.u16()
    incarnation = reader.u32()
    round_no = reader.u32()
    own_last = SeqNo(reader.u32())
    alive = tuple(reader.boolean() for _ in range(n))
    decision_blob = reader.bytes_field()
    decision_pdu = decode_message(decision_blob)
    if not isinstance(decision_pdu, DecisionMessage):
        raise StorageError("snapshot decision field is not a decision")
    tracker_values = reader.u32_list()
    floors_values = reader.u32_list()
    gaps: dict[ProcessId, list[tuple[SeqNo, SeqNo]]] = {}
    for _ in range(reader.u16()):
        origin = ProcessId(reader.u16())
        first = SeqNo(reader.u32())
        last = SeqNo(reader.u32())
        gaps.setdefault(origin, []).append((first, last))
    open_marks: dict[ProcessId, SeqNo] = {}
    for _ in range(reader.u16()):
        origin = ProcessId(reader.u16())
        open_marks[origin] = SeqNo(reader.u32())
    voids: dict[ProcessId, list[tuple[SeqNo, SeqNo]]] = {}
    for _ in range(reader.u16()):
        origin = ProcessId(reader.u16())
        first = SeqNo(reader.u32())
        last = SeqNo(reader.u32())
        voids.setdefault(origin, []).append((first, last))
    count = reader.u32()
    delivered = []
    for _ in range(count):
        message = decode_message(reader.bytes_field())
        if not isinstance(message, UserMessage):
            raise StorageError("snapshot delivered entry is not a user message")
        delivered.append(message)
    reader.expect_end()
    state = MemberState(
        pid=pid,
        incarnation=incarnation,
        own_last=own_last,
        alive=alive,
        latest_decision=decision_pdu.decision,
        tracker_last={
            ProcessId(k): SeqNo(v)
            for k, v in enumerate(tracker_values)
            if v > 0
        },
        tracker_gaps={origin: tuple(ranges) for origin, ranges in gaps.items()},
        floors={
            ProcessId(k): SeqNo(v) for k, v in enumerate(floors_values) if v > 0
        },
        open_marks=open_marks,
        void_ranges={origin: tuple(ranges) for origin, ranges in voids.items()},
    )
    return MemberSnapshot(state=state, delivered=tuple(delivered), round_no=round_no)


def restore_member(pid, config, snapshot, wal_records):
    """Rebuild a Member from ``snapshot`` (may be None) + WAL records.

    Returns ``(member, delivered)`` where ``delivered`` is the full
    reconstructed delivery log — the snapshot's log followed by the
    deliveries the WAL replay produced.
    """
    from ..core.member import Member

    if snapshot is None:
        member = Member(pid, config)
        delivered: list[UserMessage] = []
    else:
        if snapshot.state.pid != pid:
            raise StorageError(
                f"snapshot belongs to pid {snapshot.state.pid}, not {pid}"
            )
        member = build_member(pid, config, snapshot.state, snapshot.delivered)
        delivered = list(snapshot.delivered)
    delivered.extend(
        replay(member, (record.as_replay_tuple() for record in wal_records))
    )
    return member, delivered
