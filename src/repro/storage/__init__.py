"""Durable state: write-ahead log, snapshots, and node storage.

The storage subsystem makes a node's GMT state crash-recoverable:

* :mod:`~repro.storage.backend` — blob stores.  ``FileBackend`` writes
  real files (snapshots atomically via rename); ``MemoryBackend`` keeps
  blobs in a dict so the discrete-event simulator and the tests
  exercise the exact same code paths deterministically.
* :mod:`~repro.storage.wal` — the append-only write-ahead log:
  length-prefixed, crc-checked records framed around the
  :mod:`repro.net.wire` codecs, with torn-tail truncation on open.
* :mod:`~repro.storage.snapshot` — periodic serialization of the
  durable :class:`~repro.core.rejoin.MemberState` plus the delivered
  log, and the ``restore_member`` composition of snapshot + WAL replay.
* :mod:`~repro.storage.store` — ``NodeStorage`` (one node's WAL +
  snapshot with a cadence policy that truncates the WAL behind each
  snapshot) and ``GroupStorage`` (a per-pid family over one backend).

The protocol-facing half of recovery (JoinRequest, rejoin mode, WAL
replay semantics) lives in :mod:`repro.core.rejoin`; this package only
owns bytes and files.
"""

from .backend import FileBackend, MemoryBackend, StorageBackend
from .snapshot import MemberSnapshot, decode_snapshot, encode_snapshot, restore_member, snapshot_of
from .store import GroupStorage, NodeStorage, SnapshotJob
from .wal import WalRecord, WriteAheadLog

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "FileBackend",
    "WriteAheadLog",
    "WalRecord",
    "MemberSnapshot",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_of",
    "restore_member",
    "NodeStorage",
    "GroupStorage",
    "SnapshotJob",
]
