"""Blob-store backends for the durable-state subsystem.

A backend is a tiny named-blob interface — read, overwrite, append,
delete — which is all the WAL and the snapshot writer need.  Two
implementations:

* :class:`MemoryBackend` — blobs in a dict.  Deterministic and fast;
  the discrete-event simulator and the recover-torture harness use it
  so the durable code paths run in every test without touching disk.
* :class:`FileBackend` — one file per blob under a root directory.
  Overwrites go through a temp file + ``os.replace`` so a snapshot is
  either the old bytes or the new bytes, never a torn mix; appends are
  plain appends, because the WAL's record framing is what tolerates a
  torn tail.
"""

from __future__ import annotations

import os
from typing import Protocol

__all__ = ["StorageBackend", "MemoryBackend", "FileBackend"]

_SAFE_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def _check_name(name: str) -> str:
    if not name or any(c not in _SAFE_NAME_CHARS for c in name):
        raise ValueError(f"unsafe blob name {name!r}")
    return name


class StorageBackend(Protocol):
    """Named-blob store used by the WAL and the snapshot writer."""

    def read(self, name: str) -> bytes | None: ...

    def write(self, name: str, data: bytes) -> None: ...

    def append(self, name: str, data: bytes) -> None: ...

    def delete(self, name: str) -> None: ...


class MemoryBackend:
    """In-memory blob store (deterministic; used by the simulator)."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytearray] = {}

    def read(self, name: str) -> bytes | None:
        blob = self._blobs.get(_check_name(name))
        return bytes(blob) if blob is not None else None

    def write(self, name: str, data: bytes) -> None:
        self._blobs[_check_name(name)] = bytearray(data)

    def append(self, name: str, data: bytes) -> None:
        self._blobs.setdefault(_check_name(name), bytearray()).extend(data)

    def delete(self, name: str) -> None:
        self._blobs.pop(_check_name(name), None)

    def names(self) -> list[str]:
        return sorted(self._blobs)


class FileBackend:
    """One file per blob under ``root`` (created if missing).

    Full writes are atomic (temp file + ``os.replace``): a crash during
    a snapshot leaves the previous snapshot intact.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.root, _check_name(name))

    def read(self, name: str) -> bytes | None:
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def write(self, name: str, data: bytes) -> None:
        path = self._path(name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as handle:
            handle.write(data)

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def names(self) -> list[str]:
        return sorted(
            entry for entry in os.listdir(self.root) if not entry.endswith(".tmp")
        )
