"""Node-level storage: one WAL + one snapshot per node, with cadence.

:class:`NodeStorage` is what a driver (:class:`~repro.runtime.node.
AsyncNode` or the simulator) talks to: it logs generated/processed
messages and adopted decisions into the WAL, takes a snapshot every
``snapshot_interval`` records — truncating the WAL behind it, which
bounds recovery-replay cost — and on :meth:`load` returns the snapshot
plus the WAL suffix for :func:`~repro.storage.snapshot.restore_member`.

:class:`GroupStorage` hands out per-pid ``NodeStorage`` instances over
one shared backend, which is how a whole :class:`AsyncGroup` or
``SimCluster`` is made durable with a single object.
"""

from __future__ import annotations

from ..core.decision import Decision
from ..core.message import UserMessage
from ..net.stats import MetricSink
from ..types import ProcessId
from .backend import MemoryBackend, StorageBackend
from .snapshot import MemberSnapshot, decode_snapshot, encode_snapshot
from .wal import WalRecord, WriteAheadLog

__all__ = ["NodeStorage", "GroupStorage", "SnapshotJob"]

#: Default records-between-snapshots (tuned low enough that tests and
#: torture runs actually exercise the compaction path).
DEFAULT_SNAPSHOT_INTERVAL = 64


class SnapshotJob:
    """A captured snapshot awaiting persistence.

    Produced by :meth:`NodeStorage.begin_snapshot`.  :meth:`persist` is
    the only blocking step and is safe to run on an executor thread: it
    writes the snapshot blob only and never touches the WAL, which the
    owning thread keeps appending to (and buffering) meanwhile.
    """

    __slots__ = ("_storage", "_blob")

    def __init__(self, storage: "NodeStorage", blob: bytes) -> None:
        self._storage = storage
        self._blob = blob

    def persist(self) -> None:
        """Write the captured snapshot blob (blocking; any thread)."""
        self._storage.backend.write(self._storage._snapshot_name, self._blob)


class NodeStorage:
    """Durable state of one node: WAL + latest snapshot."""

    def __init__(
        self,
        backend: StorageBackend,
        pid: ProcessId,
        *,
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
    ) -> None:
        if snapshot_interval < 1:
            raise ValueError(f"snapshot_interval must be >= 1, got {snapshot_interval}")
        self.backend = backend
        self.pid = pid
        self.snapshot_interval = snapshot_interval
        self.wal = WriteAheadLog(backend, f"node-{int(pid):05d}.wal")
        self._snapshot_name = f"node-{int(pid):05d}.snap"
        #: WAL records appended since the last snapshot.
        self.records_since_snapshot = 0
        #: Snapshots taken over this instance's lifetime.
        self.snapshots_taken = 0
        #: Framed WAL records appended while a snapshot persists
        #: asynchronously (None when no snapshot is in flight).
        self._flight_tail: list[bytes] | None = None
        self._registry: MetricSink | None = None

    def bind_registry(self, registry: MetricSink) -> None:
        """Mirror WAL/snapshot activity into a shared observability
        registry as ``storage.wal_records`` (labelled by record kind)
        and ``storage.snapshots`` counters."""
        self._registry = registry

    def _count_record(self, kind: str) -> None:
        self.records_since_snapshot += 1
        if self._registry is not None:
            self._registry.count(
                "storage.wal_records", kind=kind, node=int(self.pid)
            )

    # -- logging -------------------------------------------------------

    def _absorb(self, record: bytes, kind: str) -> None:
        if self._flight_tail is not None:
            self._flight_tail.append(record)
        self._count_record(kind)

    def log_generated(self, message: UserMessage) -> None:
        self._absorb(self.wal.append_generated(message), "generated")

    def log_processed(self, message: UserMessage) -> None:
        self._absorb(self.wal.append_processed(message), "processed")

    def log_decision(self, decision: Decision) -> None:
        self._absorb(self.wal.append_decision(decision), "decision")

    # -- snapshots -----------------------------------------------------

    def should_snapshot(self) -> bool:
        return (
            self._flight_tail is None
            and self.records_since_snapshot >= self.snapshot_interval
        )

    def save_snapshot(self, snapshot: MemberSnapshot) -> None:
        """Persist ``snapshot`` and truncate the WAL behind it.

        The synchronous path (the simulator's, where blocking is the
        point).  Drivers on an event loop use :meth:`begin_snapshot` /
        :meth:`finish_snapshot` instead.
        """
        if self._flight_tail is not None:
            raise RuntimeError("a snapshot is already in flight")
        self.backend.write(self._snapshot_name, encode_snapshot(snapshot))
        self.wal.reset()
        self.records_since_snapshot = 0
        self.snapshots_taken += 1
        if self._registry is not None:
            self._registry.count("storage.snapshots", node=int(self.pid))

    def begin_snapshot(self, snapshot: MemberSnapshot) -> SnapshotJob:
        """Capture ``snapshot`` for asynchronous persistence.

        Pure CPU: encodes the blob and starts buffering every WAL
        record appended while the write is in flight.  Run the returned
        job's :meth:`SnapshotJob.persist` on any thread, then call
        :meth:`finish_snapshot` from the owning thread to compact the
        WAL.  While a snapshot is in flight :meth:`should_snapshot` is
        False, so the cadence cannot start a second one.
        """
        if self._flight_tail is not None:
            raise RuntimeError("a snapshot is already in flight")
        blob = encode_snapshot(snapshot)
        self._flight_tail = []
        return SnapshotJob(self, blob)

    def finish_snapshot(self) -> None:
        """Compact the WAL behind a persisted snapshot.

        The log becomes exactly the records appended while the write
        was in flight — one atomic rewrite, so no record is ever
        dropped before a durable snapshot covers it.
        """
        tail = self._flight_tail
        if tail is None:
            raise RuntimeError("no snapshot in flight")
        self._flight_tail = None
        self.wal.rewrite(tail)
        self.records_since_snapshot = len(tail)
        self.snapshots_taken += 1
        if self._registry is not None:
            self._registry.count("storage.snapshots", node=int(self.pid))

    # -- recovery ------------------------------------------------------

    def load(self) -> tuple[MemberSnapshot | None, list[WalRecord]]:
        """Read back the snapshot (None if never taken) and the WAL
        suffix, torn tail already truncated."""
        blob = self.backend.read(self._snapshot_name)
        snapshot = decode_snapshot(blob) if blob is not None else None
        records = self.wal.open()
        self.records_since_snapshot = len(records)
        return snapshot, records


class GroupStorage:
    """Per-pid :class:`NodeStorage` family over one backend."""

    def __init__(
        self,
        backend: StorageBackend | None = None,
        *,
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
    ) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self.snapshot_interval = snapshot_interval
        self._nodes: dict[ProcessId, NodeStorage] = {}

    def node(self, pid: ProcessId) -> NodeStorage:
        storage = self._nodes.get(pid)
        if storage is None:
            storage = NodeStorage(
                self.backend, pid, snapshot_interval=self.snapshot_interval
            )
            self._nodes[pid] = storage
        return storage
