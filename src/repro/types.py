"""Shared scalar types and aliases used across the library.

The paper's model is a set of processes ``P = {p_1 .. p_n}`` organized
in a group ``G``; time advances in *rounds*, two rounds form a *subrun*
and one subrun spans one round-trip delay (rtd).  These aliases keep
signatures readable and give a single place to document the units.
"""

from __future__ import annotations

from typing import Final, NewType, TypeAlias

__all__ = [
    "ProcessId",
    "RoundNo",
    "SubrunNo",
    "SeqNo",
    "Time",
    "RTD_PER_SUBRUN",
    "ROUNDS_PER_SUBRUN",
    "round_of_subrun",
    "subrun_of_round",
    "time_of_round",
]

#: Index of a process in the group, ``0 <= pid < n``.
ProcessId = NewType("ProcessId", int)

#: Global round counter.  Rounds are synchronous protocol steps; a
#: process may broadcast at most one new user message per round.
RoundNo = NewType("RoundNo", int)

#: Global subrun counter.  Subrun ``s`` consists of rounds ``2s`` and
#: ``2s + 1`` and is coordinated by one rotating coordinator.
SubrunNo = NewType("SubrunNo", int)

#: Per-process progressive order assigned to generated messages,
#: starting at 1 (0 means "nothing yet").
SeqNo = NewType("SeqNo", int)

#: Simulated time, measured in round-trip-delay (rtd) units as in the
#: paper's evaluation ("by assuming the subrun as long as the round
#: trip delay").  One round therefore lasts 0.5 rtd.
Time: TypeAlias = float

#: Duration of a subrun, in rtd units.
RTD_PER_SUBRUN: Final[Time] = 1.0

#: A subrun is two rounds: the request round and the decision round.
ROUNDS_PER_SUBRUN: Final = 2


def round_of_subrun(subrun: int, *, second: bool = False) -> int:
    """Return the first (or second) round number of ``subrun``."""
    return subrun * ROUNDS_PER_SUBRUN + (1 if second else 0)


def subrun_of_round(round_no: int) -> int:
    """Return the subrun a round belongs to."""
    return round_no // ROUNDS_PER_SUBRUN


def time_of_round(round_no: int) -> Time:
    """Return the simulated start time of ``round_no`` in rtd units."""
    return round_no * (RTD_PER_SUBRUN / ROUNDS_PER_SUBRUN)
