"""The paper's K-consecutive detection rule, extracted from the member.

This is the exact leave-rule logic that used to live inline in
``Member._account_missed_decision`` and ``Member._apply_decision``
(the ``_strict_misses`` / ``_decision_seen_for`` / ``chain_gap``
state), moved behind the :class:`~repro.detect.base.FailureDetector`
interface.  Behaviour is bit-identical — the equivalence property test
in ``tests/properties/test_detector_properties.py`` replays arbitrary
decision/miss traces against a reimplementation of the pre-refactor
inline logic and asserts identical leave decisions.

The rule has two readings, selected by ``config.leave_rule``:

* **CONFIRMED** — count only decisions *proven* missed by a gap in the
  decision chain counter; K or more at once forces a leave.
* **STRICT** — count every subrun whose decision never arrived,
  excusing coordinators the local view (or the suspicion surface)
  already holds crashed; K consecutive misses force a leave.

It produces no suspicions: the paper's detection is purely
leave-oriented (a member infers *its own* receive-omission failure).
"""

from __future__ import annotations

from ..core.config import LeaveRule, UrcgcConfig
from ..types import SubrunNo
from .base import FailureDetector

__all__ = ["KConsecutiveDetector"]


class KConsecutiveDetector(FailureDetector):
    """Leave after missing decisions from K consecutive coordinators."""

    name = "k-consecutive"

    def __init__(self, config: UrcgcConfig) -> None:
        self._K = config.K
        self._rule = config.leave_rule
        #: Consecutive subruns without a decision (STRICT rule).
        self.strict_misses = 0
        #: Highest subrun number whose decision we have adopted.
        self.decision_seen_for: SubrunNo = SubrunNo(-1)

    def account_missed_decision(
        self, previous: SubrunNo, *, excused: bool
    ) -> str | None:
        if self._rule is not LeaveRule.STRICT:
            return None
        if self.decision_seen_for >= previous:
            return None
        if excused:
            return None
        self.strict_misses += 1
        if self.strict_misses >= self._K:
            return (
                f"missed decisions from {self.strict_misses} consecutive coordinators"
            )
        return None

    def observe_chain_gap(self, chain_gap: int) -> str | None:
        if self._rule is LeaveRule.CONFIRMED and chain_gap >= self._K:
            return f"missed {chain_gap} consecutive decisions"
        return None

    def decision_adopted(
        self, number: SubrunNo, *, reset_misses: bool = True
    ) -> None:
        if number > self.decision_seen_for:
            self.decision_seen_for = number
        if reset_misses:
            self.strict_misses = 0

    def reset(self) -> None:
        self.strict_misses = 0
