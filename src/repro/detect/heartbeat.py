"""Eventually-perfect heartbeat failure detector.

Every member broadcasts a HEARTBEAT PDU once per ``heartbeat_every``
subruns (any other PDU from a peer counts as liveness evidence too).
Per peer, the detector feeds the observed inter-evidence gaps — in
*round* units, the protocol's native clock — into an
:class:`~repro.runtime.rtt.RttEstimator` and suspects the peer once
its silence exceeds a conservative bound::

    timeout(p) = min(max_timeout,
                     scale(p) * max(srtt + k * dev, timeout_floor))

``scale(p)`` starts at 1 and multiplies by ``backoff`` every time a
suspicion proves false (evidence arrives from a suspected peer), so in
a partially synchronous run every peer's timeout eventually exceeds
its true maximum gap and false suspicions stop: the detector converges
to eventual perfection (◇P) — eventual strong accuracy from the
backoff, strong completeness because a crashed peer's silence grows
without bound while its timeout is capped at ``max_timeout``.

The leave-rule surface is inherited unchanged from
:class:`~repro.detect.kconsecutive.KConsecutiveDetector`: suspicion
augments the paper's rule (STRICT-rule coordinator excusal, decision
accounting), it does not replace it.
"""

from __future__ import annotations

from ..core.config import FailureDetectorConfig, UrcgcConfig
from ..runtime.rtt import RttEstimator
from ..types import ProcessId, SubrunNo
from .base import SuspicionEvent
from .kconsecutive import KConsecutiveDetector

__all__ = ["HeartbeatDetector"]


class HeartbeatDetector(KConsecutiveDetector):
    """Timeout-with-backoff suspicion over heartbeat/traffic evidence."""

    name = "heartbeat"
    wants_heartbeats = True
    tracks_suspicion = True

    def __init__(self, pid: ProcessId, config: UrcgcConfig) -> None:
        super().__init__(config)
        spec = config.failure_detector or FailureDetectorConfig()
        self._pid = pid
        self._n = config.n
        self._spec = spec
        #: Current time in rounds (advanced by the driver's round clock).
        self._time = 0.0
        self._last_seen: dict[ProcessId, float] = {}
        self._gaps: dict[ProcessId, RttEstimator] = {}
        self._scale: dict[ProcessId, float] = {}
        self._suspected: set[ProcessId] = set()
        self._events: list[SuspicionEvent] = []
        #: Total suspect transitions ever (reports/metrics).
        self.suspicions_total = 0
        self.false_suspicions_total = 0

    # -- suspicion surface --------------------------------------------

    def advance(self, round_no: int) -> None:
        self._time = float(round_no)
        if not self._last_seen:
            # First tick: give every peer a full timeout of grace.
            for k in range(self._n):
                pid = ProcessId(k)
                if pid != self._pid:
                    self._last_seen[pid] = self._time
            return
        for pid, seen in self._last_seen.items():
            if pid in self._suspected:
                continue
            silence = self._time - seen
            bound = self._timeout(pid)
            if silence > bound:
                self._suspected.add(pid)
                self.suspicions_total += 1
                self._events.append(
                    SuspicionEvent(
                        pid,
                        True,
                        f"silent {silence:g} rounds (timeout {bound:g})",
                    )
                )

    def observe_alive(self, pid: ProcessId) -> None:
        if pid == self._pid or not 0 <= pid < self._n:
            return
        seen = self._last_seen.get(pid)
        if seen is not None:
            gap = self._time - seen
            if gap > 0:
                self._estimator(pid).observe(gap)
        self._last_seen[pid] = self._time
        if pid in self._suspected:
            # False suspicion: the peer was alive all along.  Back off
            # so the same gap never trips the timeout again.
            self._suspected.discard(pid)
            self.false_suspicions_total += 1
            self._scale[pid] = self._scale.get(pid, 1.0) * self._spec.backoff
            self._events.append(
                SuspicionEvent(pid, False, "evidence from suspected peer")
            )

    def observe_heartbeat(self, pid: ProcessId, incarnation: int) -> None:
        self.observe_alive(pid)

    def heartbeat_due(self, subrun: SubrunNo) -> bool:
        return subrun % self._spec.heartbeat_every == 0

    def suspects(self) -> frozenset[ProcessId]:
        return frozenset(self._suspected)

    def poll_events(self) -> list[SuspicionEvent]:
        events = self._events
        self._events = []
        return events

    # -- internals ----------------------------------------------------

    def _estimator(self, pid: ProcessId) -> RttEstimator:
        estimator = self._gaps.get(pid)
        if estimator is None:
            # Pre-sample gap guess: one heartbeat period in rounds.
            estimator = self._gaps[pid] = RttEstimator(
                initial_timeout=2.0 * self._spec.heartbeat_every
            )
        return estimator

    def _timeout(self, pid: ProcessId) -> float:
        base = self._estimator(pid).timeout(
            k=self._spec.timeout_k, floor=self._spec.timeout_floor
        )
        return min(self._spec.max_timeout, self._scale.get(pid, 1.0) * base)
