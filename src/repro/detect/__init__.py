"""Pluggable failure detection (PROTOCOL §13).

The member engine consults a :class:`~repro.detect.base.FailureDetector`
for both of the paper's detection questions — "should I leave?" and
"whom do I suspect?" — selected by
``UrcgcConfig(failure_detector=FailureDetectorConfig(kind=...))``:

* ``"k-consecutive"`` (and ``failure_detector=None``) — the paper's
  rule, extracted verbatim from the member; bit-identical behaviour.
* ``"heartbeat"`` — eventually-perfect timeout-with-backoff over
  HEARTBEAT PDUs (:mod:`repro.detect.heartbeat`).
* ``"oracle"`` — a test-driven perfect detector
  (:mod:`repro.detect.oracle`).

``HeartbeatDetector`` is imported lazily (it pulls in
:mod:`repro.runtime`, which imports :mod:`repro.core` back); import it
from :mod:`repro.detect.heartbeat` directly when needed eagerly.
"""

from __future__ import annotations

from ..core.config import UrcgcConfig
from ..errors import ConfigError
from ..types import ProcessId
from .base import FailureDetector, SuspicionEvent
from .kconsecutive import KConsecutiveDetector
from .oracle import OracleDetector

__all__ = [
    "FailureDetector",
    "SuspicionEvent",
    "KConsecutiveDetector",
    "OracleDetector",
    "make_detector",
]


def make_detector(pid: ProcessId, config: UrcgcConfig) -> FailureDetector:
    """Build the detector ``config.failure_detector`` selects.

    ``None`` means the paper's K-consecutive rule (the engine's
    historical inline behaviour, bit for bit).
    """
    spec = config.failure_detector
    if spec is None or spec.kind == "k-consecutive":
        return KConsecutiveDetector(config)
    if spec.kind == "heartbeat":
        # Lazy: repro.runtime imports repro.core.member at package
        # import time, so pulling it in here (call time) avoids a
        # circular import while core.member itself is loading.
        from .heartbeat import HeartbeatDetector

        return HeartbeatDetector(pid, config)
    if spec.kind == "oracle":
        return OracleDetector(config)
    raise ConfigError(f"unknown detector kind {spec.kind!r}")
