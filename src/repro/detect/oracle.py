"""A configurable perfect failure detector for tests.

The oracle suspects exactly the set the harness tells it to
(:meth:`OracleDetector.set_crashed`): no false suspicions, no
detection latency.  It exists so scenarios and unit tests can separate
"what does the protocol do *given* correct suspicion" from "how fast
does suspicion converge" — the classic P-detector baseline the
eventually-perfect heartbeat detector is measured against.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.config import UrcgcConfig
from ..types import ProcessId
from .base import SuspicionEvent
from .kconsecutive import KConsecutiveDetector

__all__ = ["OracleDetector"]


class OracleDetector(KConsecutiveDetector):
    """Suspects exactly the processes the test declares crashed."""

    name = "oracle"
    tracks_suspicion = True

    def __init__(self, config: UrcgcConfig) -> None:
        super().__init__(config)
        self._crashed: set[ProcessId] = set()
        self._events: list[SuspicionEvent] = []
        self.suspicions_total = 0

    def set_crashed(self, pids: Iterable[ProcessId]) -> None:
        """Replace the suspect set; transitions are reported as events."""
        target = set(pids)
        for pid in sorted(target - self._crashed):
            self.suspicions_total += 1
            self._events.append(SuspicionEvent(pid, True, "oracle: crashed"))
        for pid in sorted(self._crashed - target):
            self._events.append(SuspicionEvent(pid, False, "oracle: recovered"))
        self._crashed = target

    def suspects(self) -> frozenset[ProcessId]:
        return frozenset(self._crashed)

    def poll_events(self) -> list[SuspicionEvent]:
        events = self._events
        self._events = []
        return events
