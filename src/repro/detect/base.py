"""The failure-detector interface the member engine consults.

The paper hardwires one detection heuristic — leave after missing
decisions from K consecutive coordinators — into the member.  This
module abstracts it into a pluggable subsystem: a
:class:`FailureDetector` observes the evidence the engine already has
(adopted decisions, chain gaps, per-subrun silence) plus, for richer
detectors, liveness evidence (any PDU from a peer, explicit HEARTBEAT
messages, the advancing round clock), and answers two questions:

* *Should this member leave?* — the leave-rule surface
  (:meth:`~FailureDetector.account_missed_decision`,
  :meth:`~FailureDetector.observe_chain_gap`) returns a leave reason
  or ``None``; the member executes the leave.
* *Whom do we suspect?* — the suspicion surface
  (:meth:`~FailureDetector.suspects`,
  :meth:`~FailureDetector.poll_events`) feeds the STRICT rule's
  coordinator excusal, the coordinator's removal accounting, and the
  driver's ``fd.*`` metrics.

Implementations: :class:`~repro.detect.kconsecutive.KConsecutiveDetector`
(the paper's rule, extracted verbatim),
:class:`~repro.detect.heartbeat.HeartbeatDetector` (eventually perfect,
timeout-with-backoff), and :class:`~repro.detect.oracle.OracleDetector`
(test-only perfect detector).  See PROTOCOL §13.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import ProcessId, SubrunNo

__all__ = ["SuspicionEvent", "FailureDetector"]


@dataclass(frozen=True)
class SuspicionEvent:
    """One suspect/unsuspect transition, drained via ``poll_events``."""

    pid: ProcessId
    suspected: bool
    reason: str


class FailureDetector:
    """Base detector: every hook is a no-op and nobody is suspected.

    Subclasses override the subset of hooks their evidence needs.  All
    hooks are synchronous and side-effect-free outside the detector —
    the member translates their answers into effects.
    """

    #: Short name used in reports and metrics labels.
    name = "none"
    #: True when the driver should broadcast/consume HEARTBEAT PDUs.
    wants_heartbeats = False
    #: True when the detector maintains a suspect set worth polling.
    tracks_suspicion = False
    #: Highest subrun number whose decision has been adopted — the
    #: leave-rule frontier (restored from snapshots on recovery).
    decision_seen_for: SubrunNo = SubrunNo(-1)

    # -- leave-rule surface (the paper's K-consecutive semantics) -----

    def account_missed_decision(
        self, previous: SubrunNo, *, excused: bool
    ) -> str | None:
        """Subrun ``previous`` produced no decision we received.

        ``excused`` is True when the member cannot hold the silence
        against the coordinator (no coordinator exists, the view
        already marks it crashed, or the suspicion surface suspects
        it).  Returns a leave reason when the rule trips.
        """
        return None

    def observe_chain_gap(self, chain_gap: int) -> str | None:
        """An adopted decision skipped ``chain_gap`` chain entries.

        Returns a leave reason when the gap proves K missed decisions
        (the CONFIRMED rule).
        """
        return None

    def decision_adopted(
        self, number: SubrunNo, *, reset_misses: bool = True
    ) -> None:
        """A decision for subrun ``number`` was adopted.

        ``reset_misses=False`` is the rejoin path: the decision updates
        the seen-frontier but a rejoining member accrues no misses to
        reset.
        """

    def reset(self) -> None:
        """Clear accumulated miss state (called when a rejoin completes)."""

    # -- suspicion surface --------------------------------------------

    def advance(self, round_no: int) -> None:
        """The round clock ticked; re-evaluate timeouts."""

    def observe_alive(self, pid: ProcessId) -> None:
        """Any PDU from ``pid`` arrived — evidence it is alive."""

    def observe_heartbeat(self, pid: ProcessId, incarnation: int) -> None:
        """An explicit HEARTBEAT from ``pid`` arrived."""

    def heartbeat_due(self, subrun: SubrunNo) -> bool:
        """Should the member broadcast a HEARTBEAT this subrun?"""
        return False

    def suspects(self) -> frozenset[ProcessId]:
        """The current suspect set (empty for evidence-free detectors)."""
        return frozenset()

    def poll_events(self) -> list[SuspicionEvent]:
        """Drain suspect/unsuspect transitions since the last poll."""
        return []
