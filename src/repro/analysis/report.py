"""ASCII rendering of tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and diff-friendly so
EXPERIMENTS.md can quote it verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value: object, *, precision: int = 3) -> str:
    """Compact numeric formatting: ints stay ints, floats get a fixed
    number of decimals, everything else str()s."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    formatted = [[format_value(cell, precision=precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    name: str,
    points: Iterable[tuple[float, float]],
    *,
    max_points: int = 40,
    precision: int = 2,
) -> str:
    """Render a (time, value) series as a one-line-per-sample sparkline
    table, thinning to at most ``max_points`` evenly spaced samples."""
    data = list(points)
    if len(data) > max_points:
        step = len(data) / max_points
        data = [data[int(i * step)] for i in range(max_points)]
    peak = max((v for _, v in data), default=0.0)
    scale = 30.0 / peak if peak > 0 else 0.0
    lines = [name]
    for t, v in data:
        bar = "#" * int(round(v * scale))
        lines.append(f"  t={format_value(t, precision=precision):>8}  "
                     f"{format_value(v, precision=precision):>10}  {bar}")
    return "\n".join(lines)
