"""Analysis: delay statistics, invariant checkers, analytic cost
models, and report rendering."""

from .causal_graph import CausalGraph, build_causal_graph
from .checkers import (
    CheckResult,
    Violation,
    check_bridge_ordering,
    check_local_causal_order,
    check_uniform_atomicity,
    check_uniform_ordering,
)
from .cost_models import (
    ControlTraffic,
    cbcast_agreement_time,
    cbcast_control_traffic,
    urcgc_agreement_time,
    urcgc_control_traffic,
    urcgc_history_bound,
)
from .delay import DelayReport, DeliveryLog
from .report import format_value, render_series, render_table
from .timeline import SubrunSummary, Timeline, build_timeline

__all__ = [
    "CausalGraph",
    "build_causal_graph",
    "CheckResult",
    "Violation",
    "check_bridge_ordering",
    "check_local_causal_order",
    "check_uniform_atomicity",
    "check_uniform_ordering",
    "ControlTraffic",
    "cbcast_agreement_time",
    "cbcast_control_traffic",
    "urcgc_agreement_time",
    "urcgc_control_traffic",
    "urcgc_history_bound",
    "DelayReport",
    "DeliveryLog",
    "format_value",
    "render_series",
    "render_table",
    "SubrunSummary",
    "Timeline",
    "build_timeline",
]
