"""Protocol timeline reconstruction from a simulation trace.

Turns a finished :class:`~repro.harness.cluster.SimCluster` run into a
per-subrun narrative: who coordinated, whether a decision was made and
over which membership, losses, discards, member departures, and
quiescence.  Intended for debugging and for the observability story a
production group service owes its operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.trace import Trace
from ..types import Time, subrun_of_round

__all__ = ["SubrunSummary", "Timeline", "build_timeline"]


@dataclass
class SubrunSummary:
    """Everything that happened during one subrun."""

    subrun: int
    coordinator: int | None = None
    decision_number: int | None = None
    decision_full_group: bool = False
    decision_alive: int | None = None
    drops: int = 0
    departures: list[tuple[int, str]] = field(default_factory=list)
    discards: int = 0
    confirms: int = 0

    def describe(self) -> str:
        parts = [f"subrun {self.subrun}:"]
        if self.decision_number is not None:
            scope = "full-group" if self.decision_full_group else "partial"
            parts.append(
                f"decision #{self.decision_number} by p{self.coordinator} "
                f"({scope}, {self.decision_alive} alive)"
            )
        else:
            parts.append("no decision (coordinator silent or crashed)")
        if self.confirms:
            parts.append(f"{self.confirms} msg(s) generated")
        if self.drops:
            parts.append(f"{self.drops} packet(s) lost")
        if self.discards:
            parts.append(f"{self.discards} orphan(s) discarded")
        for pid, reason in self.departures:
            parts.append(f"p{pid} left ({reason})")
        return "  ".join(parts)


@dataclass
class Timeline:
    """The full run, subrun by subrun."""

    subruns: list[SubrunSummary]
    quiescent_at: Time | None = None

    def decisionless_subruns(self) -> list[int]:
        return [s.subrun for s in self.subruns if s.decision_number is None]

    def full_group_count(self) -> int:
        return sum(1 for s in self.subruns if s.decision_full_group)

    def render(self) -> str:
        lines = [s.describe() for s in self.subruns]
        if self.quiescent_at is not None:
            lines.append(f"quiescent at t={self.quiescent_at} rtd")
        return "\n".join(lines)


def _subrun_of_time(time: Time) -> int:
    return subrun_of_round(int(time / 0.5))


def build_timeline(trace: Trace, *, through: Time | None = None) -> Timeline:
    """Reconstruct the protocol timeline from a cluster trace.

    Requires the cluster to have run with tracing enabled.
    """
    summaries: dict[int, SubrunSummary] = {}

    def summary(time: Time) -> SubrunSummary:
        subrun = _subrun_of_time(time)
        entry = summaries.get(subrun)
        if entry is None:
            entry = summaries[subrun] = SubrunSummary(subrun)
        return entry

    quiescent_at: Time | None = None
    for record in trace:
        if through is not None and record.time > through:
            continue
        if record.kind == "decision.broadcast":
            entry = summary(record.time)
            entry.coordinator = record.actor
            entry.decision_number = record["number"]
            entry.decision_full_group = record["full_group"]
            entry.decision_alive = record["alive"]
        elif record.kind == "net.drop":
            summary(record.time).drops += 1
        elif record.kind == "member.left":
            summary(record.time).departures.append(
                (record.actor or -1, record["reason"])
            )
        elif record.kind == "member.discarded":
            summary(record.time).discards += record["count"]
        elif record.kind == "member.confirm":
            summary(record.time).confirms += 1
        elif record.kind == "cluster.quiescent":
            quiescent_at = record.time
    if not summaries:
        return Timeline([], quiescent_at)
    last = max(summaries)
    ordered = [summaries.get(s, SubrunSummary(s)) for s in range(last + 1)]
    return Timeline(ordered, quiescent_at)
