"""Causal-dependency graph extraction and DOT export.

Builds the run's message DAG (nodes = mids, edges = declared causal
dependencies) from any collection of delivered messages — a service's
``delivered`` list, a :class:`~repro.net.capture.PacketCapture`, or a
recovery dump — and renders it as Graphviz DOT text for offline
visualization.  No external dependencies: the DOT is plain text.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from ..core.message import UserMessage
from ..core.mid import Mid
from ..types import ProcessId

__all__ = ["CausalGraph", "build_causal_graph"]


@dataclass
class CausalGraph:
    """The run's message DAG."""

    #: mid -> declared dependencies.
    edges: dict[Mid, tuple[Mid, ...]] = field(default_factory=dict)
    #: mid -> payload size (for node annotations).
    sizes: dict[Mid, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.edges)

    def add(self, message: UserMessage) -> None:
        self.edges.setdefault(message.mid, message.deps)
        self.sizes.setdefault(message.mid, len(message.payload))

    def origins(self) -> list[ProcessId]:
        return sorted({mid.origin for mid in self.edges})

    def roots(self) -> list[Mid]:
        """Messages with no dependencies (sequence roots)."""
        return sorted(mid for mid, deps in self.edges.items() if not deps)

    def dependents_of(self, target: Mid) -> list[Mid]:
        """Messages that directly depend on ``target``."""
        return sorted(
            mid for mid, deps in self.edges.items() if target in deps
        )

    def depth_of(self, mid: Mid) -> int:
        """Length of the longest dependency chain below ``mid``."""
        depth = 0
        frontier = deque([(mid, 0)])
        seen = set()
        while frontier:
            current, d = frontier.popleft()
            depth = max(depth, d)
            for dep in self.edges.get(current, ()):
                if (dep, d + 1) not in seen:
                    seen.add((dep, d + 1))
                    frontier.append((dep, d + 1))
        return depth

    def concurrency_width(self) -> int:
        """Messages with identical depth can be processed concurrently;
        the maximum such bucket is the DAG's width."""
        buckets: dict[int, int] = {}
        for mid in self.edges:
            buckets[self.depth_of(mid)] = buckets.get(self.depth_of(mid), 0) + 1
        return max(buckets.values(), default=0)

    def to_dot(self, *, title: str = "causal graph") -> str:
        """Render as Graphviz DOT, clustered by origin."""
        lines = [
            f'digraph "{title}" {{',
            "  rankdir=BT;",
            '  node [shape=box, fontname="monospace"];',
        ]
        for origin in self.origins():
            lines.append(f"  subgraph cluster_p{origin} {{")
            lines.append(f'    label="p{origin}";')
            for mid in sorted(self.edges):
                if mid.origin == origin:
                    lines.append(
                        f'    "{mid}" [label="{mid}\\n{self.sizes.get(mid, 0)}B"];'
                    )
            lines.append("  }")
        for mid in sorted(self.edges):
            for dep in self.edges[mid]:
                lines.append(f'  "{mid}" -> "{dep}";')
        lines.append("}")
        return "\n".join(lines)


def build_causal_graph(messages: Iterable[UserMessage]) -> CausalGraph:
    """Build the DAG from any iterable of delivered messages."""
    graph = CausalGraph()
    for message in messages:
        graph.add(message)
    return graph
