"""Closed-form cost models from the paper (Table 1 and Figure 5).

These are the analytic expressions the paper states for the two
protocols; the benchmarks print them next to the values *measured* on
our implementations so the reader can check both the paper's algebra
and our reproduction at once.

Table 1 (control messages per subrun and their sizes in bytes):

====================  =======================  ==========================
                      reliable                 crash (f coordinator
                                               crashes, K retries)
====================  =======================  ==========================
urcgc   messages      ``2(n-1)``               ``2(2K+f)(n-1)``
urcgc   size          ``O(n)`` constant        same, unchanged
CBCAST  messages      ``n+1``                  ``K((f+1)(2n-3)+1)``
CBCAST  size          ``4(n+1)``               up to ``4(n-1)`` flushes
====================  =======================  ==========================

Figure 5 (time ``T``, in rtd, to agree on group composition and
message stability after ``f`` consecutive coordinator crashes):

* urcgc:   ``T = 2K + f``
* CBCAST:  ``T = K(5f + 6)``
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = [
    "ControlTraffic",
    "urcgc_control_traffic",
    "cbcast_control_traffic",
    "urcgc_agreement_time",
    "cbcast_agreement_time",
    "urcgc_history_bound",
]


def _check(n: int, K: int = 1, f: int = 0) -> None:
    if n < 2:
        raise ConfigError(f"n must be >= 2, got {n}")
    if K < 1:
        raise ConfigError(f"K must be >= 1, got {K}")
    if f < 0:
        raise ConfigError(f"f must be >= 0, got {f}")


@dataclass(frozen=True)
class ControlTraffic:
    """Control-message count and per-message size, per Table 1 row."""

    messages: int
    message_size_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.messages * self.message_size_bytes


#: Bytes per vector entry in the urcgc request/decision encoding used
#: for the Table 1 size column (Table 1's per-member constant; the
#: paper's garbled "n(36 + 1/4)" expression is O(n) with a per-member
#: constant of a few tens of bytes — ours is measured from the codec).
URCGC_BYTES_PER_MEMBER = 36


def urcgc_control_traffic(n: int, *, K: int = 1, f: int = 0, crash: bool = False) -> ControlTraffic:
    """Table 1, urcgc rows.

    Per subrun urcgc always exchanges ``2(n-1)`` control messages
    (``n-1`` requests + ``n-1`` decision unicasts); under crashes the
    agreement spans ``2K+f`` subruns, so the total message count grows
    by that factor while the message *size* is unchanged — the paper's
    headline contrast with CBCAST.
    """
    _check(n, K, f)
    size = float(URCGC_BYTES_PER_MEMBER * n)
    if crash:
        return ControlTraffic(2 * (2 * K + f) * (n - 1), size)
    return ControlTraffic(2 * (n - 1), size)


def cbcast_control_traffic(
    n: int, *, K: int = 1, f: int = 0, crash: bool = False
) -> ControlTraffic:
    """Table 1, CBCAST rows.

    Reliable: ``n+1`` messages of ``4(n+1)`` bytes (piggyback or
    stability traffic).  Under crashes: ``K((f+1)(2n-3)+1)`` messages,
    with flush messages of ``4(n-1)`` bytes.
    """
    _check(n, K, f)
    if crash:
        return ControlTraffic(K * ((f + 1) * (2 * n - 3) + 1), float(4 * (n - 1)))
    return ControlTraffic(n + 1, float(4 * (n + 1)))


def urcgc_agreement_time(K: int, f: int) -> float:
    """Figure 5, urcgc curve: ``T = (2K + f)`` rtd."""
    _check(2, K, f)
    return float(2 * K + f)


def cbcast_agreement_time(K: int, f: int) -> float:
    """Figure 5, CBCAST curve: ``T = K(5f + 6)`` rtd."""
    _check(2, K, f)
    return float(K * (5 * f + 6))


def urcgc_history_bound(n: int, *, K: int, f: int = 0) -> int:
    """Worst-case history growth between cleanings (Section 6).

    Agreement takes at most ``2K + f`` rtd, during which at most
    ``2(2K+f)n`` messages can enter the history (up to one per process
    per round, two rounds per rtd).
    """
    _check(n, K, f)
    return 2 * (2 * K + f) * n
