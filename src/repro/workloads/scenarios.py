"""Failure scenarios used throughout the paper's evaluation.

Each builder returns a configured :class:`~repro.net.faults.FaultPlan`:

* :func:`reliable` — no failures (the baseline curve of Figure 4).
* :func:`crashes` — fail-stop a given set of processes at given times
  (Figure 4's "4 crashes" curve; Figure 6's "1 crash").
* :func:`omission` — uniform send/receive omission at rate 1/N
  (Figure 4's "1/500" and "1/100" curves).
* :func:`general_omission` — crash + omission combined (Figure 6's
  faulty runs: "general omission with 1 crash failure and 1/500
  omission failures ... during the first 5 rtd").
* :func:`consecutive_coordinator_crashes` — ``f`` back-to-back
  coordinator crashes, each at the instant the victim should broadcast
  its decision (Figure 5's x-axis).
"""

from __future__ import annotations

import random

from ..errors import ConfigError
from ..net.faults import CrashSchedule, FaultPlan
from ..types import ProcessId, Time, time_of_round

__all__ = [
    "reliable",
    "crashes",
    "omission",
    "general_omission",
    "consecutive_coordinator_crashes",
]


def reliable() -> FaultPlan:
    """A fault-free network."""
    return FaultPlan()


def crashes(
    schedule: dict[ProcessId, Time],
    *,
    rng: random.Random | None = None,
) -> FaultPlan:
    """Fail-stop the given processes at the given times (rtd units)."""
    crash_schedule = CrashSchedule()
    for pid, time in sorted(schedule.items()):
        crash_schedule.crash(pid, time)
    return FaultPlan(crashes=crash_schedule, rng=rng or random.Random(0))


def omission(
    pids: list[ProcessId],
    one_in: int,
    *,
    rng: random.Random | None = None,
    periodic: bool = False,
) -> FaultPlan:
    """Uniform general-omission at rate ``1/one_in`` per message."""
    if one_in < 2:
        raise ConfigError(f"omission period must be >= 2, got {one_in}")
    plan = FaultPlan(rng=rng or random.Random(0))
    plan.set_uniform_omission(pids, 1.0 / one_in, periodic=periodic)
    return plan


def general_omission(
    pids: list[ProcessId],
    *,
    crash_schedule: dict[ProcessId, Time],
    one_in: int,
    rng: random.Random | None = None,
    periodic: bool = False,
    window: tuple[Time, Time] | None = None,
) -> FaultPlan:
    """Crashes plus uniform omissions — the paper's faulty Figure 6 runs.

    ``window`` confines the omissions to a time interval ("failures
    are considered to occur during the first 5 rtd" is
    ``window=(0.0, 5.0)``); crashes keep their scheduled times.
    """
    schedule = CrashSchedule()
    for pid, time in sorted(crash_schedule.items()):
        schedule.crash(pid, time)
    plan = FaultPlan(crashes=schedule, rng=rng or random.Random(0))
    plan.set_uniform_omission(
        [pid for pid in pids if pid not in crash_schedule],
        1.0 / one_in,
        periodic=periodic,
    )
    if window is not None:
        plan.set_omission_window(*window)
    return plan


def consecutive_coordinator_crashes(
    n: int,
    f: int,
    *,
    first_subrun: int = 1,
    rng: random.Random | None = None,
) -> FaultPlan:
    """Crash the coordinators of ``f`` consecutive subruns.

    Each victim crashes exactly at its decision round, so it collects
    the subrun's requests but never broadcasts — the worst case the
    paper's ``T = (2K + f)·rtd`` bound covers.  The rotation is over
    *initially alive* processes, and victims are distinct (a process
    crashes at most once), so the victims are the processes at rotation
    positions ``first_subrun .. first_subrun + f - 1``.
    """
    if f < 0:
        raise ConfigError(f"f must be >= 0, got {f}")
    if f >= n:
        raise ConfigError(f"cannot crash {f} coordinators in a group of {n}")
    schedule = CrashSchedule()
    for i in range(f):
        subrun = first_subrun + i
        pid = ProcessId(subrun % n)
        decision_round = 2 * subrun + 1
        schedule.crash(pid, time_of_round(decision_round))
    return FaultPlan(crashes=schedule, rng=rng or random.Random(0))
