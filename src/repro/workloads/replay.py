"""Replay a captured run's application traffic as a workload.

Take a :class:`~repro.net.capture.PacketCapture` from one simulation
and re-offer the same payloads, from the same senders, at the same
rounds — against a different configuration, fault plan, or protocol
version.  The capture-replay loop is the standard way to debug a
production incident offline.
"""

from __future__ import annotations

from ..core.message import UserMessage
from ..net.capture import Direction, PacketCapture
from ..types import ProcessId

__all__ = ["ReplayWorkload"]


class ReplayWorkload:
    """Re-submit the data messages of a capture at their original rounds."""

    def __init__(self, capture: PacketCapture) -> None:
        self._schedule: dict[int, list[tuple[ProcessId, bytes]]] = {}
        self._last_round = -1
        seen: set = set()
        for record in capture.filter(direction=Direction.SENT, kind="data"):
            decoded = record.decode()
            if not isinstance(decoded, UserMessage):
                continue
            if decoded.mid in seen:
                continue  # retransmissions replay once
            seen.add(decoded.mid)
            round_no = int(record.time / 0.5)
            self._schedule.setdefault(round_no, []).append(
                (decoded.mid.origin, decoded.payload)
            )
            self._last_round = max(self._last_round, round_no)
        self.total = len(seen)
        self.offered = 0

    def submissions(self, round_no: int) -> list[tuple[ProcessId, bytes]]:
        entries = self._schedule.get(round_no, [])
        self.offered += len(entries)
        return entries

    def finished(self, round_no: int) -> bool:
        return round_no > self._last_round
