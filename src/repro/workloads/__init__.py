"""Workload generators and the paper's failure scenarios."""

from .generators import (
    BernoulliWorkload,
    BurstWorkload,
    FixedBudgetWorkload,
    NullWorkload,
    PoissonWorkload,
    ScriptedWorkload,
    Workload,
    ZipfTopics,
    payload_for,
)
from .replay import ReplayWorkload
from .scenarios import (
    consecutive_coordinator_crashes,
    crashes,
    general_omission,
    omission,
    reliable,
)

__all__ = [
    "BernoulliWorkload",
    "BurstWorkload",
    "PoissonWorkload",
    "FixedBudgetWorkload",
    "NullWorkload",
    "ScriptedWorkload",
    "Workload",
    "ZipfTopics",
    "ReplayWorkload",
    "payload_for",
    "consecutive_coordinator_crashes",
    "crashes",
    "general_omission",
    "omission",
    "reliable",
]
