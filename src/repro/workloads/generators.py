"""Workload generators: who submits which payload at which round.

A workload is anything with a ``submissions(round_no)`` method
returning the ``(pid, payload)`` pairs the application layer hands to
the service at that round boundary.  The paper's evaluation uses two
shapes, both provided here:

* an *offered-load* workload (Figure 4): every process independently
  submits with a per-round probability, sweeping the aggregate rate;
* a *fixed-budget* workload (Figure 6: "480 messages to be
  processed"): a message budget spread across the group, one message
  per process per round until exhausted.
"""

from __future__ import annotations

import random
from typing import Iterable, Protocol

from ..errors import ConfigError
from ..types import ProcessId

__all__ = [
    "Workload",
    "NullWorkload",
    "BernoulliWorkload",
    "FixedBudgetWorkload",
    "ScriptedWorkload",
    "BurstWorkload",
    "PoissonWorkload",
    "ZipfTopics",
    "payload_for",
]


def payload_for(pid: ProcessId, round_no: int, size: int = 32) -> bytes:
    """A deterministic, self-describing payload of ``size`` bytes."""
    stamp = f"p{pid}r{round_no}:".encode()
    if len(stamp) >= size:
        return stamp[:size]
    return stamp + b"x" * (size - len(stamp))


class Workload(Protocol):
    """Submission source driven by the cluster at each round.

    ``finished(round_no)`` tells the harness whether any submissions
    can still come at or after ``round_no`` — quiescence detection
    refuses to declare a run over while the workload has more to say.
    """

    def submissions(self, round_no: int) -> list[tuple[ProcessId, bytes]]: ...

    def finished(self, round_no: int) -> bool: ...


class NullWorkload:
    """No application traffic (protocol-only experiments)."""

    def submissions(self, round_no: int) -> list[tuple[ProcessId, bytes]]:
        return []

    def finished(self, round_no: int) -> bool:
        return True


class BernoulliWorkload:
    """Independent per-process, per-round submission probability.

    With probability ``p`` per process per round, the aggregate offered
    load is ``2 * n * p`` messages per rtd (two rounds per rtd).
    """

    def __init__(
        self,
        pids: Iterable[ProcessId],
        p: float,
        *,
        rng: random.Random | None = None,
        payload_size: int = 32,
        stop_after_round: int | None = None,
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigError(f"submission probability must be in [0, 1], got {p}")
        self._pids = list(pids)
        self.p = p
        self._rng = rng or random.Random(0)
        self._payload_size = payload_size
        self._stop_after = stop_after_round
        self.offered = 0

    def submissions(self, round_no: int) -> list[tuple[ProcessId, bytes]]:
        if self.finished(round_no):
            return []
        out = []
        for pid in self._pids:
            if self._rng.random() < self.p:
                out.append((pid, payload_for(pid, round_no, self._payload_size)))
                self.offered += 1
        return out

    def finished(self, round_no: int) -> bool:
        # p was validated into [0, 1]; <= avoids exact float equality
        # while keeping the "never submits" short-circuit identical.
        if self.p <= 0.0:
            return True
        return self._stop_after is not None and round_no > self._stop_after


class FixedBudgetWorkload:
    """A total message budget, spread round-robin across the group.

    Every process submits one message per round until the budget is
    exhausted — the Figure 6 shape (n=40, 480 messages: each process
    generates 12 messages over the first 12 rounds).
    """

    def __init__(
        self,
        pids: Iterable[ProcessId],
        total: int,
        *,
        payload_size: int = 32,
    ) -> None:
        if total < 0:
            raise ConfigError(f"message budget must be >= 0, got {total}")
        self._pids = list(pids)
        self.total = total
        self._payload_size = payload_size
        self.offered = 0

    def submissions(self, round_no: int) -> list[tuple[ProcessId, bytes]]:
        out = []
        for pid in self._pids:
            if self.offered >= self.total:
                break
            out.append((pid, payload_for(pid, round_no, self._payload_size)))
            self.offered += 1
        return out

    def finished(self, round_no: int) -> bool:
        return self.offered >= self.total


class ScriptedWorkload:
    """An explicit schedule: ``{round: [(pid, payload), ...]}``."""

    def __init__(self, schedule: dict[int, list[tuple[ProcessId, bytes]]]) -> None:
        self._schedule = {r: list(entries) for r, entries in schedule.items()}
        self._last_round = max((r for r, e in self._schedule.items() if e), default=-1)

    def submissions(self, round_no: int) -> list[tuple[ProcessId, bytes]]:
        return self._schedule.get(round_no, [])

    def finished(self, round_no: int) -> bool:
        return round_no > self._last_round


class BurstWorkload:
    """On/off traffic: everyone submits during bursts, nothing between.

    Conferencing-shaped load (the paper's motivating application):
    ``on_rounds`` of full-rate talk alternating with ``off_rounds`` of
    silence, starting with a burst at round 0.
    """

    def __init__(
        self,
        pids: Iterable[ProcessId],
        *,
        on_rounds: int,
        off_rounds: int,
        total: int | None = None,
        payload_size: int = 32,
    ) -> None:
        if on_rounds < 1 or off_rounds < 0:
            raise ConfigError(
                f"need on_rounds >= 1 and off_rounds >= 0, got "
                f"{on_rounds}/{off_rounds}"
            )
        self._pids = list(pids)
        self.on_rounds = on_rounds
        self.off_rounds = off_rounds
        self.total = total
        self._payload_size = payload_size
        self.offered = 0

    def in_burst(self, round_no: int) -> bool:
        period = self.on_rounds + self.off_rounds
        return (round_no % period) < self.on_rounds

    def submissions(self, round_no: int) -> list[tuple[ProcessId, bytes]]:
        if not self.in_burst(round_no):
            return []
        out = []
        for pid in self._pids:
            if self.total is not None and self.offered >= self.total:
                break
            out.append((pid, payload_for(pid, round_no, self._payload_size)))
            self.offered += 1
        return out

    def finished(self, round_no: int) -> bool:
        return self.total is not None and self.offered >= self.total


class PoissonWorkload:
    """Poisson arrivals: each process queues ``Poisson(rate)`` messages
    per round (the queueing-theory shape; the service layer drains one
    per round, so rate > 1 exercises the submission backlog)."""

    def __init__(
        self,
        pids: Iterable[ProcessId],
        rate: float,
        *,
        rng: random.Random | None = None,
        payload_size: int = 32,
        stop_after_round: int | None = None,
    ) -> None:
        if rate < 0:
            raise ConfigError(f"rate must be >= 0, got {rate}")
        self._pids = list(pids)
        self.rate = rate
        self._rng = rng or random.Random(0)
        self._payload_size = payload_size
        self._stop_after = stop_after_round
        self.offered = 0

    def _draw(self) -> int:
        # Knuth's algorithm; rate is small (per-round).
        import math

        threshold = math.exp(-self.rate)
        count = 0
        product = self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count

    def submissions(self, round_no: int) -> list[tuple[ProcessId, bytes]]:
        if self.finished(round_no):
            return []
        out = []
        for pid in self._pids:
            for _ in range(self._draw()):
                out.append((pid, payload_for(pid, round_no, self._payload_size)))
                self.offered += 1
        return out

    def finished(self, round_no: int) -> bool:
        # rate was validated >= 0; <= avoids exact float equality while
        # keeping the "never submits" short-circuit identical.
        if self.rate <= 0.0:
            return True
        return self._stop_after is not None and round_no > self._stop_after


class ZipfTopics:
    """Zipf-distributed topic popularity for the service tier.

    Real pub/sub topic popularity is heavy-tailed: a few channels see
    most of the traffic, a long tail sees almost none.  This generator
    draws topics from a Zipf law, ``P(rank k) ~ 1 / k**s``, over a
    fixed universe of ``topics`` names — the shape the ``repro serve``
    demo publishes into its sharded groups.

    Not a round-driven :class:`Workload`: the service tier is client-
    driven, so this is a plain sampler (``draw()`` one topic,
    ``draw_set(k)`` for a multi-topic publish) plus ``subscription(k)``
    for a client's interest set — all off one seeded RNG, so demo runs
    are reproducible.
    """

    def __init__(
        self,
        topics: int,
        *,
        s: float = 1.1,
        prefix: bytes = b"topic-",
        rng: random.Random | None = None,
    ) -> None:
        if topics < 1:
            raise ConfigError(f"need at least one topic, got {topics}")
        if s <= 0:
            raise ConfigError(f"Zipf exponent must be > 0, got {s}")
        self.s = s
        self._names = [prefix + b"%d" % rank for rank in range(1, topics + 1)]
        self._rng = rng or random.Random(0)
        # Cumulative Zipf mass over ranks 1..topics, for bisection.
        weights = [1.0 / (rank ** s) for rank in range(1, topics + 1)]
        total = sum(weights)
        acc = 0.0
        self._cdf = []
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float undershoot

    @property
    def names(self) -> list[bytes]:
        """The topic universe, most popular first."""
        return list(self._names)

    def draw(self) -> bytes:
        """One topic, Zipf-distributed by rank."""
        from bisect import bisect_left

        return self._names[bisect_left(self._cdf, self._rng.random())]

    def draw_set(self, k: int) -> tuple[bytes, ...]:
        """``k`` *distinct* topics for a multi-topic publish."""
        if not 1 <= k <= len(self._names):
            raise ConfigError(
                f"k must be in [1, {len(self._names)}], got {k}"
            )
        picked: dict[bytes, None] = {}
        while len(picked) < k:
            picked.setdefault(self.draw(), None)
        return tuple(picked)

    def subscription(self, k: int) -> tuple[bytes, ...]:
        """A client's interest set: ``k`` distinct topics, Zipf-biased
        (popular channels attract subscribers as well as traffic)."""
        return self.draw_set(k)
