"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything originating here with a single ``except`` clause.
The hierarchy mirrors the package layout: simulation-kernel errors,
network-substrate errors, protocol errors, and configuration errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ScheduleInPastError",
    "KernelStoppedError",
    "NetworkError",
    "UnknownAddressError",
    "WireFormatError",
    "PacketTooLargeError",
    "ProtocolError",
    "NotInGroupError",
    "DuplicateMidError",
    "UnknownMidError",
    "CausalityViolationError",
    "HistoryOverflowError",
    "FlowControlBlocked",
    "MemberLeftError",
    "RuntimeTransportError",
    "StorageError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent.

    Raised eagerly at construction time (e.g. ``K <= 0`` or a
    flow-control threshold that cannot hold one subrun of messages) so
    misconfiguration never surfaces as a confusing mid-run failure.
    """


class SimulationError(ReproError):
    """Base class for discrete-event kernel errors."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled before the kernel's current time."""


class KernelStoppedError(SimulationError):
    """An operation requires a running kernel but it has stopped."""


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class UnknownAddressError(NetworkError, KeyError):
    """A packet was addressed to an endpoint the network does not know."""


class WireFormatError(NetworkError, ValueError):
    """A byte string could not be decoded as a protocol message."""


class PacketTooLargeError(NetworkError, ValueError):
    """An encoded packet exceeds the network's MTU."""


class ProtocolError(ReproError):
    """Base class for urcgc/baseline protocol-state errors."""


class NotInGroupError(ProtocolError):
    """An operation referenced a process that is not a group member."""


class DuplicateMidError(ProtocolError):
    """A message id was generated or inserted twice."""


class UnknownMidError(ProtocolError, KeyError):
    """A message id was referenced but never seen."""


class CausalityViolationError(ProtocolError):
    """A declared dependency set is cyclic or otherwise ill-formed."""


class HistoryOverflowError(ProtocolError):
    """The history buffer exceeded its hard capacity.

    Only raised when flow control is disabled and a hard cap is set;
    with the paper's distributed flow control the history is bounded
    and this error cannot occur.
    """


class FlowControlBlocked(ProtocolError):
    """A send was refused because flow control is engaged.

    The caller should retry after the history drains; the service layer
    turns this into a deferred confirm rather than an exception.
    """


class MemberLeftError(ProtocolError):
    """An operation was attempted on an engine that left the group.

    A member leaves after ``K`` missed coordinator decisions, after
    ``R`` failed recovery attempts, or by suicide when it learns the
    group presumed it crashed (Section 4 of the paper).
    """


class RuntimeTransportError(ReproError):
    """The asyncio runtime transport failed (closed socket, bad peer)."""


class StorageError(ReproError):
    """Durable-state failure: unreadable or corrupted snapshot.

    Note the write-ahead log never raises this for a torn tail — a torn
    tail is the *expected* crash artifact and is truncated silently.
    """
