"""asyncio runtime: the paper's promised LAN prototype, in-process.

The same sans-IO engines as the simulator, driven by wall-clock
asyncio tasks over an in-memory datagram fabric (with loss injection),
over genuine loopback UDP sockets, or over either wrapped in the
fault-injecting :class:`ChaosFabric`.  Rounds can be sized from a live
RTT estimate ("assuming the subrun as long as the round trip delay").
"""

from .chaos import ChaosFabric
from .lan import AsyncEndpoint, AsyncLan, Datagram
from .node import AsyncGroup, AsyncNode
from .rtt import AdaptiveRoundTimer, RttEstimator
from .udp import UdpEndpoint, UdpFabric

__all__ = [
    "AsyncEndpoint",
    "ChaosFabric",
    "AsyncLan",
    "Datagram",
    "AsyncGroup",
    "AsyncNode",
    "AdaptiveRoundTimer",
    "RttEstimator",
    "UdpEndpoint",
    "UdpFabric",
]
