"""Real UDP sockets for the asyncio runtime.

The paper closes promising "performance measurements obtained by the
execution of the algorithm among a group of processes being run on a
set of Unix workstations".  This module runs the same engines over
genuine ``asyncio`` UDP datagram endpoints (loopback by default): the
group's multicast is emulated with n-unicast ``sendto`` — exactly the
transport semantics of Section 5 with ``h = 1``.

:class:`UdpFabric` exposes the same surface as
:class:`~repro.runtime.lan.AsyncLan` (``attach`` / ``join`` /
``sendto`` / ``close``), so :class:`~repro.runtime.node.AsyncNode` and
:class:`~repro.runtime.node.AsyncGroup` run over it unchanged.
"""

from __future__ import annotations

import asyncio
import random

from ..errors import RuntimeTransportError, UnknownAddressError
from ..net.addressing import Address, GroupAddress, UnicastAddress
from ..types import ProcessId
from .lan import Datagram

__all__ = ["UdpEndpoint", "UdpFabric"]

#: One byte of pid prefix identifies the sender on the wire.
_PID_HEADER_BYTES = 2

#: Largest payload one IPv4 UDP datagram can carry (65535 minus IP and
#: UDP headers).  An over-MTU frame (e.g. an oversized batch) is
#: dropped and counted instead of raising EMSGSIZE out of asyncio.
_MAX_DATAGRAM_BYTES = 65507


class _Protocol(asyncio.DatagramProtocol):
    """Feeds received datagrams into the endpoint queue."""

    def __init__(self, endpoint: "UdpEndpoint") -> None:
        self._endpoint = endpoint

    def datagram_received(self, data: bytes, addr) -> None:
        if len(data) < _PID_HEADER_BYTES:
            # Runt datagram (shorter than the pid header): dropped like
            # a bad checksum, but counted so live debugging can tell
            # parse failure from network loss.
            self._endpoint.dropped_count += 1
            return
        src = ProcessId(int.from_bytes(data[:_PID_HEADER_BYTES], "big"))
        self._endpoint.queue.put_nowait(
            Datagram(src, data[_PID_HEADER_BYTES:])
        )

    def error_received(self, exc: Exception) -> None:
        # ICMP errors (port unreachable, …) are datagram losses to us,
        # but a climbing counter points at a dead peer.
        self._endpoint.error_count += 1


class UdpEndpoint:
    """One node's UDP socket plus its receive queue.

    ``dropped_count`` counts datagrams discarded at this endpoint
    (runts that failed to parse); ``error_count`` counts ICMP errors
    reported against the socket.
    """

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.queue: "asyncio.Queue[Datagram]" = asyncio.Queue()
        self.transport: asyncio.DatagramTransport | None = None
        self.address: tuple[str, int] | None = None
        self.dropped_count = 0
        self.error_count = 0

    async def bind(self, host: str, port: int = 0) -> None:
        loop = asyncio.get_running_loop()
        self.transport, _ = await loop.create_datagram_endpoint(
            lambda: _Protocol(self), local_addr=(host, port)
        )
        self.address = self.transport.get_extra_info("sockname")

    async def recv(self) -> Datagram:
        return await self.queue.get()

    def close(self) -> None:
        if self.transport is not None:
            self.transport.close()
            self.transport = None


class UdpFabric:
    """A set of UDP endpoints with n-unicast multicast emulation.

    Build with :meth:`create` (socket binding is asynchronous)::

        fabric = await UdpFabric.create(n=4)
        group = AsyncGroup(config, lan=fabric)
    """

    def __init__(self, *, loss: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= loss < 1.0:
            raise RuntimeTransportError(f"loss must be in [0, 1), got {loss}")
        self.loss = loss
        self._rng = random.Random(seed)
        self._endpoints: dict[ProcessId, UdpEndpoint] = {}
        #: pid -> (host, port): where to send for every process,
        #: locally bound or not.
        self._addresses: dict[ProcessId, tuple[str, int]] = {}
        self._groups: dict[str, list[ProcessId]] = {}
        self._closed = False
        self.sent_count = 0
        self.dropped_count = 0
        self.oversize_count = 0

    @classmethod
    async def create(
        cls,
        n: int,
        *,
        host: str = "127.0.0.1",
        loss: float = 0.0,
        seed: int = 0,
    ) -> "UdpFabric":
        """Bind one loopback UDP socket per process id ``0..n-1``
        (single-process deployment: every node in this process)."""
        fabric = cls(loss=loss, seed=seed)
        for i in range(n):
            pid = ProcessId(i)
            endpoint = UdpEndpoint(pid)
            await endpoint.bind(host)
            fabric._endpoints[pid] = endpoint
            assert endpoint.address is not None
            fabric._addresses[pid] = endpoint.address
        return fabric

    @classmethod
    async def create_node(
        cls,
        pid: ProcessId,
        n: int,
        *,
        host: str = "127.0.0.1",
        base_port: int,
        loss: float = 0.0,
        seed: int = 0,
    ) -> "UdpFabric":
        """Bind only *this* process's socket (multi-process deployment).

        Every group member derives its peers' addresses from the shared
        convention ``(host, base_port + pid)`` — the paper's "group of
        processes being run on a set of Unix workstations", one OS
        process per member.
        """
        fabric = cls(loss=loss, seed=seed)
        endpoint = UdpEndpoint(pid)
        await endpoint.bind(host, base_port + int(pid))
        fabric._endpoints[pid] = endpoint
        for i in range(n):
            fabric._addresses[ProcessId(i)] = (host, base_port + i)
        return fabric

    # -- AsyncLan-compatible surface -------------------------------------

    def attach(self, pid: ProcessId) -> UdpEndpoint:
        endpoint = self._endpoints.get(pid)
        if endpoint is None:
            raise RuntimeTransportError(
                f"no UDP socket bound for p{pid}; build the fabric with create(n)"
            )
        return endpoint

    def join(self, group: GroupAddress, pid: ProcessId) -> None:
        members = self._groups.setdefault(group.name, [])
        if pid not in members:
            members.append(pid)

    def close(self) -> None:
        self._closed = True
        for endpoint in self._endpoints.values():
            endpoint.close()

    def sendto(
        self, src: ProcessId, dst: Address, data: bytes, *, kind: str = "data"
    ) -> None:
        if self._closed:
            raise RuntimeTransportError("fabric is closed")
        if isinstance(dst, UnicastAddress):
            targets = [dst.pid]
        elif isinstance(dst, GroupAddress):
            members = self._groups.get(dst.name)
            if members is None:
                raise UnknownAddressError(dst.name)
            targets = [pid for pid in members if pid != src]
        else:
            raise UnknownAddressError(str(dst))
        self.sent_count += 1
        wire = int(src).to_bytes(_PID_HEADER_BYTES, "big") + data
        if len(wire) > _MAX_DATAGRAM_BYTES:
            # To every receiver this is one datagram loss; urcgc's
            # history recovery re-fetches the contents unbatched.
            self.oversize_count += 1
            self.dropped_count += len(targets)
            return
        source = self._endpoints.get(src)
        if source is None or source.transport is None:
            raise RuntimeTransportError(f"p{src} has no bound socket")
        for pid in targets:
            if self.loss and self._rng.random() < self.loss:
                self.dropped_count += 1
                continue
            address = self._addresses.get(pid)
            if address is None:
                self.dropped_count += 1
                continue
            source.transport.sendto(wire, address)
