"""One urcgc node on the asyncio LAN.

Hosts a :class:`~repro.core.member.Member` engine: a round-ticker task
fires the two protocol rounds per subrun at a configurable cadence and
a receiver task feeds decoded datagrams to the engine; both execute
the engine's effects (sends to the LAN, deliveries to the application
callback).

Use :class:`AsyncGroup` to spin up a whole group at once.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from ..core.config import UrcgcConfig
from ..core.effects import Confirm, Deliver, Discarded, Effect, Left, Send
from ..core.member import Member
from ..core.message import DecisionMessage, RequestMessage, UserMessage
from ..net.addressing import BROADCAST_GROUP
from ..net.wire import decode_message, encode_message
from ..types import ProcessId
from .lan import AsyncLan
from .rtt import AdaptiveRoundTimer

__all__ = ["AsyncNode", "AsyncGroup"]

IndicationCallback = Callable[[ProcessId, UserMessage], None]


class AsyncNode:
    """One live group member.

    Parameters
    ----------
    pid, config, lan:
        Identity, protocol parameters, fabric.
    round_interval:
        Wall-clock seconds per protocol round (half a subrun).
    adaptive_timer:
        Optional :class:`~repro.runtime.rtt.AdaptiveRoundTimer`: the
        node then sizes each round from the measured request→decision
        round trip ("assuming the subrun as long as the round trip
        delay"), instead of the fixed ``round_interval``.
    on_indication:
        Callback ``(pid, message)`` for every processed message.
    """

    def __init__(
        self,
        pid: ProcessId,
        config: UrcgcConfig,
        lan: AsyncLan,
        *,
        round_interval: float = 0.02,
        adaptive_timer: AdaptiveRoundTimer | None = None,
        on_indication: IndicationCallback | None = None,
    ) -> None:
        self.pid = pid
        self.member = Member(pid, config)
        self._lan = lan
        self._endpoint = lan.attach(pid)
        lan.join(BROADCAST_GROUP, pid)
        self.round_interval = round_interval
        self.adaptive_timer = adaptive_timer
        self._request_sent_at: dict[int, float] = {}
        self._on_indication = on_indication
        self._tasks: list[asyncio.Task] = []
        self._round = 0
        self.delivered: list[UserMessage] = []
        self.confirmed_mids: list = []
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------

    def submit(self, payload: bytes) -> None:
        """urcgc.data.Rq: queue a payload for the next round."""
        self.member.submit(payload)

    @property
    def has_left(self) -> bool:
        return self.member.has_left

    @property
    def current_round(self) -> int:
        return self._round

    def start(self) -> None:
        """Spawn the ticker and receiver tasks."""
        if self._tasks:
            raise RuntimeError("node already started")
        self._tasks = [
            asyncio.create_task(self._ticker(), name=f"urcgc-ticker-p{self.pid}"),
            asyncio.create_task(self._receiver(), name=f"urcgc-recv-p{self.pid}"),
        ]

    async def stop(self) -> None:
        """Cancel the node's tasks and wait for them to finish."""
        self._stopped.set()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    # ------------------------------------------------------------------

    async def _ticker(self) -> None:
        while not self._stopped.is_set() and not self.member.has_left:
            self._execute(self.member.on_round(self._round))
            self._round += 1
            interval = (
                self.adaptive_timer.interval()
                if self.adaptive_timer is not None
                else self.round_interval
            )
            await asyncio.sleep(interval)

    async def _receiver(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopped.is_set():
            datagram = await self._endpoint.recv()
            if self.member.has_left:
                continue
            message = decode_message(datagram.data)
            if (
                self.adaptive_timer is not None
                and isinstance(message, DecisionMessage)
            ):
                # One request->decision echo = one rtd sample.
                sent = self._request_sent_at.pop(
                    int(message.decision.number), None
                )
                if sent is not None:
                    self.adaptive_timer.observe(loop.time() - sent)
            self._execute(self.member.on_message(message))

    def _execute(self, effects: list[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                if (
                    self.adaptive_timer is not None
                    and isinstance(effect.message, RequestMessage)
                ):
                    self._request_sent_at[int(effect.message.subrun)] = (
                        asyncio.get_running_loop().time()
                    )
                    # Bound the table: forget ancient unanswered probes.
                    if len(self._request_sent_at) > 64:
                        oldest = min(self._request_sent_at)
                        del self._request_sent_at[oldest]
                self._lan.sendto(
                    self.pid, effect.dst, encode_message(effect.message), kind=effect.kind
                )
            elif isinstance(effect, Deliver):
                self.delivered.append(effect.message)
                if self._on_indication is not None:
                    self._on_indication(self.pid, effect.message)
            elif isinstance(effect, Confirm):
                self.confirmed_mids.append(effect.mid)
            elif isinstance(effect, (Left, Discarded)):
                pass  # observable via member state


class AsyncGroup:
    """A whole urcgc group on one asyncio loop."""

    def __init__(
        self,
        config: UrcgcConfig,
        *,
        lan: AsyncLan | None = None,
        round_interval: float = 0.02,
        on_indication: IndicationCallback | None = None,
    ) -> None:
        self.config = config
        self.lan = lan or AsyncLan()
        self.nodes = [
            AsyncNode(
                ProcessId(i),
                config,
                self.lan,
                round_interval=round_interval,
                on_indication=on_indication,
            )
            for i in range(config.n)
        ]

    def start(self) -> None:
        for node in self.nodes:
            node.start()

    async def stop(self) -> None:
        for node in self.nodes:
            await node.stop()
        self.lan.close()

    async def wait_until(
        self, predicate: Callable[[], bool], *, timeout: float = 10.0
    ) -> None:
        """Poll ``predicate`` until true (or raise TimeoutError)."""

        async def poll() -> None:
            while not predicate():
                await asyncio.sleep(0.005)

        await asyncio.wait_for(poll(), timeout)

    async def run_workload(
        self,
        submissions: list[tuple[ProcessId, bytes]],
        *,
        timeout: float = 10.0,
    ) -> None:
        """Submit payloads, then wait until every live node processed
        every message every live node generated."""
        for pid, payload in submissions:
            self.nodes[pid].submit(payload)

        def complete() -> bool:
            live = [n for n in self.nodes if not n.has_left]
            if any(n.member.pending_submissions for n in live):
                return False
            if any(n.member.waiting_length for n in live):
                return False
            vectors = {n.member.last_processed_vector() for n in live}
            return len(vectors) == 1

        await self.wait_until(complete, timeout=timeout)
