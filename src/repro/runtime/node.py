"""One urcgc node on the asyncio LAN.

Hosts a :class:`~repro.core.member.Member` engine: a round-ticker task
fires the two protocol rounds per subrun at a configurable cadence and
a receiver task feeds decoded datagrams to the engine; both execute
the engine's effects (sends to the LAN, deliveries to the application
callback).

Use :class:`AsyncGroup` to spin up a whole group at once.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from ..core.batcher import Batcher, expand_message
from ..core.config import UrcgcConfig
from ..core.effects import (
    Confirm,
    DecisionApplied,
    Deliver,
    Discarded,
    Effect,
    Left,
    Rejoined,
    Send,
    SuspicionChange,
)
from ..core.member import Member
from ..core.message import (
    DecisionMessage,
    GenerateBatch,
    RequestMessage,
    UserMessage,
)
from ..core.mid import Mid
from ..core.validate import validate_message
from ..errors import WireFormatError
from ..net.addressing import BROADCAST_GROUP
from ..net.wire import BatchFrame, decode_message, encode_message
from ..obs import NULL_RECORDER, Recorder, write_jsonl
from ..storage import (
    GroupStorage,
    NodeStorage,
    SnapshotJob,
    restore_member,
    snapshot_of,
)
from ..types import ProcessId, SubrunNo
from .lan import AsyncLan
from .rtt import AdaptiveRoundTimer

__all__ = ["AsyncNode", "AsyncGroup"]

IndicationCallback = Callable[[ProcessId, UserMessage], None]


class AsyncNode:
    """One live group member.

    Parameters
    ----------
    pid, config, lan:
        Identity, protocol parameters, fabric.
    round_interval:
        Wall-clock seconds per protocol round (half a subrun).
    adaptive_timer:
        Optional :class:`~repro.runtime.rtt.AdaptiveRoundTimer`: the
        node then sizes each round from the measured request→decision
        round trip ("assuming the subrun as long as the round trip
        delay"), instead of the fixed ``round_interval``.
    on_indication:
        Callback ``(pid, message)`` for every processed message.
    storage:
        Optional :class:`~repro.storage.NodeStorage`: the node then
        write-ahead-logs every own message (before it is sent), every
        processed peer message, and every adopted decision, snapshots on
        the storage's cadence, and supports :meth:`recover` after a
        :meth:`crash`.
    recorder:
        Span recorder shared across the group (wall clock).  Defaults
        to the no-op recorder; :class:`AsyncGroup` wires a live one
        when ``config.observability`` is set.
    """

    def __init__(
        self,
        pid: ProcessId,
        config: UrcgcConfig,
        lan: AsyncLan,
        *,
        round_interval: float = 0.02,
        adaptive_timer: AdaptiveRoundTimer | None = None,
        on_indication: IndicationCallback | None = None,
        storage: NodeStorage | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        self.pid = pid
        self.config = config
        self.storage = storage
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._obs = self.recorder.enabled
        if self._obs and storage is not None:
            storage.bind_registry(self.recorder.registry)
        self.member = Member(pid, config)
        #: Wire batcher (None when batching is off).  Effect
        #: bookkeeping always sees the original sends; only the
        #: transmission path goes through ``pack``.
        self._batcher: Batcher | None = (
            Batcher(
                config.batching,
                registry=self.recorder.registry if self._obs else None,
                clock=time.perf_counter if self._obs else None,
            )
            if config.batching is not None
            else None
        )
        self._lan = lan
        self._endpoint = lan.attach(pid)
        lan.join(BROADCAST_GROUP, pid)
        self.round_interval = round_interval
        self.adaptive_timer = adaptive_timer
        self._request_sent_at: dict[int, float] = {}
        self._on_indication = on_indication
        self._tasks: list[asyncio.Task] = []
        #: In-flight snapshot persistence (runs on the default executor).
        self._snapshot_task: asyncio.Task | None = None
        self._round = 0
        self.delivered: list[UserMessage] = []
        self.confirmed_mids: list = []
        #: Mids this node generated / saw destroyed by orphan discard —
        #: the live analogue of the simulator's DeliveryLog, read by
        #: the chaos harness to audit Uniform Atomicity.
        self.generated_mids: list[Mid] = []
        self.discarded_mids: list[Mid] = []
        #: Datagrams dropped by the hardened decode path: structurally
        #: malformed bytes or semantically out-of-range PDUs.
        self.decode_errors = 0
        #: Batch-expanded sub-messages suppressed as duplicates before
        #: reaching the engine (fabric duplication x batching).
        self.dup_suppressed = 0
        #: Suspicion transitions the failure detector reported.
        self.suspicion_events: list[SuspicionChange] = []
        self.crashed = False
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------

    def submit(self, payload: bytes) -> None:
        """urcgc.data.Rq: queue a payload for the next round."""
        self.member.submit(payload)

    @property
    def has_left(self) -> bool:
        return self.member.has_left

    @property
    def current_round(self) -> int:
        return self._round

    @property
    def current_subrun(self) -> int:
        return self._round // 2

    @property
    def is_live(self) -> bool:
        """Still a functioning group member: neither crashed nor left."""
        return not self.crashed and not self.member.has_left

    def start(self) -> None:
        """Spawn the ticker and receiver tasks."""
        if self._tasks:
            raise RuntimeError("node already started")
        self._tasks = [
            asyncio.create_task(self._ticker(), name=f"urcgc-ticker-p{self.pid}"),
            asyncio.create_task(self._receiver(), name=f"urcgc-recv-p{self.pid}"),
        ]

    async def stop(self) -> None:
        """Cancel the node's tasks and wait for them to finish."""
        self._stopped.set()
        # Detach the task list *before* the await below: anything that
        # observes the node mid-gather (a concurrent start/stop) must
        # see it already stopped, not a half-cancelled intermediate.
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        flush, self._snapshot_task = self._snapshot_task, None
        if flush is not None:
            # Drain the in-flight snapshot so durable state is settled
            # before crash()/recover() read it back.
            await flush

    async def crash(self) -> None:
        """Fail-stop this node: halt the ticker and receiver immediately.

        The engine state, delivery log, and endpoint are left intact
        (socket state stays consistent — the fabric still owns the
        endpoint), so a post-mortem audit can read what the process
        observed before dying.  Idempotent.
        """
        if self.crashed:
            return
        self.crashed = True
        await self.stop()

    def recover(self) -> None:
        """Restart after a :meth:`crash` as a *new incarnation*.

        Reloads the snapshot + WAL from :attr:`storage`, replays the
        WAL into a fresh engine (recomputing the delivered log, which
        extends the pre-crash log prefix-consistently), then begins the
        rejoin protocol: the node broadcasts JOIN requests until a
        coordinator admits it via a circulated decision, catches up by
        state transfer, and only then resumes generating REQUESTs.

        Requires ``storage`` and ``config.enable_rejoin``.  Must be
        called from a running event loop (it restarts the node tasks).
        If the fabric knows how to revive a process (``ChaosFabric``),
        the fabric-level crash is lifted too.
        """
        if self.storage is None:
            raise RuntimeError("node has no storage; cannot recover")
        if not self.crashed:
            raise RuntimeError("node is not crashed")
        snapshot, records = self.storage.load()
        member, delivered = restore_member(self.pid, self.config, snapshot, records)
        member.begin_rejoin()
        self.member = member
        self.delivered = delivered
        self.generated_mids = [
            message.mid for message in delivered if message.mid.origin == self.pid
        ]
        self._round = snapshot.round_no if snapshot is not None else 0
        self._request_sent_at.clear()
        # Datagrams queued while dead belong to the old incarnation.
        while not self._endpoint.queue.empty():
            self._endpoint.queue.get_nowait()
        revive = getattr(self._lan, "revive", None)
        if revive is not None:
            revive(self.pid)
        self.crashed = False
        self._stopped = asyncio.Event()
        self.start()

    # ------------------------------------------------------------------

    async def _ticker(self) -> None:
        while not self._stopped.is_set() and not self.member.has_left:
            if self._obs and self._round % 2 == 0:
                self.recorder.subrun(self._round // 2, node=int(self.pid))
            self._execute(self.member.on_round(self._round))
            self._round += 1
            interval = (
                self.adaptive_timer.interval()
                if self.adaptive_timer is not None
                else self.round_interval
            )
            await asyncio.sleep(interval)

    def _count_decode_error(self, reason: str) -> None:
        self.decode_errors += 1
        if self._obs:
            self.recorder.registry.count(
                "net.decode_error", node=int(self.pid), reason=reason
            )

    async def _receiver(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopped.is_set():
            datagram = await self._endpoint.recv()
            if self.member.has_left:
                continue
            try:
                decoded = decode_message(datagram.data)
                expanded = list(expand_message(decoded))
            except WireFormatError:
                # Malformed datagram (bad tag, truncation, garbage):
                # a loss, never a crash of the receive loop.
                self._count_decode_error("parse")
                continue
            batched = isinstance(decoded, (BatchFrame, GenerateBatch))
            for message in expanded:
                if self.member.has_left:
                    break
                problem = validate_message(message, self.config.n)
                if problem is not None:
                    # Structurally valid but semantically out of range
                    # (forged vector, member index >= n): drop it.
                    self._count_decode_error("range")
                    continue
                if (
                    batched
                    and isinstance(message, UserMessage)
                    and self.member.already_seen(message.mid)
                ):
                    # A duplicated batch frame re-expands every sub-
                    # message; suppress the copies here so duplication
                    # x batching does not multiply-count in the
                    # engine's duplicate accounting.
                    self.dup_suppressed += 1
                    if self._obs:
                        self.recorder.registry.count(
                            "batch.dup_suppressed", node=int(self.pid)
                        )
                    continue
                if (
                    self.adaptive_timer is not None
                    and isinstance(message, DecisionMessage)
                ):
                    # One request->decision echo = one rtd sample.
                    sent = self._request_sent_at.pop(
                        int(message.decision.number), None
                    )
                    if sent is not None:
                        rtt = loop.time() - sent
                        self.adaptive_timer.observe(rtt)
                        if self._obs:
                            self.recorder.registry.observe(
                                "runtime.rtt", rtt, node=int(self.pid)
                            )
                self._execute(self.member.on_message(message))

    def _execute(self, effects: list[Effect]) -> None:
        sends: list[Send] = []
        for effect in effects:
            if isinstance(effect, Send):
                sends.append(effect)
                if isinstance(effect.message, RequestMessage):
                    if self.adaptive_timer is not None:
                        self._request_sent_at[int(effect.message.subrun)] = (
                            asyncio.get_running_loop().time()
                        )
                        # Bound the table: forget ancient unanswered probes.
                        if len(self._request_sent_at) > 64:
                            oldest = min(self._request_sent_at)
                            del self._request_sent_at[oldest]
                    if self._obs:
                        self.recorder.request(
                            int(effect.message.subrun), node=int(self.pid)
                        )
                elif isinstance(effect.message, DecisionMessage):
                    if self._obs:
                        self.recorder.decision(
                            int(effect.message.decision.number), node=int(self.pid)
                        )
                elif (
                    isinstance(effect.message, UserMessage)
                    and effect.message.mid.origin == self.pid
                ):
                    self.generated_mids.append(effect.message.mid)
                    if self._obs:
                        self.recorder.generated(
                            effect.message.mid,
                            effect.message.deps,
                            node=int(self.pid),
                        )
                    if self.storage is not None:
                        # Log-before-send: a sent message is always in
                        # the WAL, so recovery never reuses its seq.
                        # That ordering is why the append stays inline
                        # (small buffered write, see docs/ANALYSIS.md).
                        self.storage.log_generated(effect.message)  # lint: disable=I502
            elif isinstance(effect, Deliver):
                self.delivered.append(effect.message)
                if self._obs:
                    self.recorder.processed(effect.message.mid, node=int(self.pid))
                if (
                    self.storage is not None
                    and effect.message.mid.origin != self.pid
                ):
                    # Own messages were logged at generation time.
                    # Inline by design: the record must be durable
                    # before the indication callback fires below
                    # (log-before-indicate, see docs/ANALYSIS.md).
                    self.storage.log_processed(effect.message)  # lint: disable=I502
                if self._on_indication is not None:
                    self._on_indication(self.pid, effect.message)
            elif isinstance(effect, Confirm):
                self.confirmed_mids.append(effect.mid)
            elif isinstance(effect, Discarded):
                self.discarded_mids.extend((effect.lost, *effect.discarded))
                if self._obs:
                    self.recorder.discarded(
                        effect.lost,
                        node=int(self.pid),
                        count=1 + len(effect.discarded),
                    )
            elif isinstance(effect, DecisionApplied):
                if self._obs:
                    self.recorder.decision(
                        int(effect.decision.number),
                        node=int(self.pid),
                        applied=True,
                    )
                if self.storage is not None:
                    # Inline by design: the decision must hit the WAL
                    # before any send it unblocks leaves this effect
                    # batch (log-before-send, see docs/ANALYSIS.md).
                    self.storage.log_decision(effect.decision)  # lint: disable=I502
            elif isinstance(effect, SuspicionChange):
                self.suspicion_events.append(effect)
                if self._obs:
                    self.recorder.suspect(
                        effect.pid,
                        suspected=effect.suspected,
                        node=int(self.pid),
                        reason=effect.reason,
                    )
                    self.recorder.registry.count(
                        "fd.suspect" if effect.suspected else "fd.unsuspect",
                        node=int(self.pid),
                    )
            elif isinstance(effect, Rejoined):
                pass  # observable via member state / group view
            elif isinstance(effect, Left):
                pass  # observable via member state
        wire_sends = self._batcher.pack(sends) if self._batcher is not None else sends
        for send in wire_sends:
            self._lan.sendto(
                self.pid, send.dst, encode_message(send.message), kind=send.kind
            )
        realign = self.member.consume_realignment()
        if realign is not None and realign > self._round:
            # Rejoin completed: fall in step with the group's clock.
            self._round = realign
        if self.storage is not None and self.storage.should_snapshot():
            self._start_snapshot()

    def _start_snapshot(self) -> None:
        """Capture a snapshot now; persist it off the event loop.

        The capture (state encode + WAL tail handoff) is pure CPU and
        happens synchronously here, so the snapshot is a consistent cut
        of the engine.  The blocking backend write (fsync + rename on
        ``FileBackend``) runs on the default executor so the loop —
        shared by every node in the group — keeps ticking.
        """
        assert self.storage is not None
        job = self.storage.begin_snapshot(
            snapshot_of(self.member, self.delivered, round_no=self._round)
        )
        self._snapshot_task = asyncio.create_task(
            self._persist_snapshot(job), name=f"urcgc-snap-p{self.pid}"
        )

    async def _persist_snapshot(self, job: SnapshotJob) -> None:
        await asyncio.get_running_loop().run_in_executor(None, job.persist)
        if self.storage is not None:
            self.storage.finish_snapshot()


class AsyncGroup:
    """A whole urcgc group on one asyncio loop."""

    def __init__(
        self,
        config: UrcgcConfig,
        *,
        lan: AsyncLan | None = None,
        round_interval: float = 0.02,
        on_indication: IndicationCallback | None = None,
        storage: GroupStorage | None = None,
    ) -> None:
        self.config = config
        self.lan = lan or AsyncLan()
        self.storage = storage
        #: Span recorder shared by every node (no-op unless
        #: ``config.observability``); wall-clock timestamps.
        self.recorder: Recorder = (
            Recorder(clock_kind="wall") if config.observability else NULL_RECORDER
        )
        if self.recorder.enabled:
            bind = getattr(self.lan, "bind_registry", None)
            if bind is not None:
                bind(self.recorder.registry)
        self.nodes = [
            AsyncNode(
                ProcessId(i),
                config,
                self.lan,
                round_interval=round_interval,
                on_indication=on_indication,
                storage=storage.node(ProcessId(i)) if storage is not None else None,
                recorder=self.recorder,
            )
            for i in range(config.n)
        ]

    def write_trace(self, path: str, **meta: object) -> None:
        """Export the run's JSONL trace (requires observability on)."""
        if not self.recorder.enabled:
            raise RuntimeError(
                "observability is disabled; construct the group with "
                "UrcgcConfig(observability=True)"
            )
        write_jsonl(path, self.recorder, runner="live", n=self.config.n, **meta)

    def start(self) -> None:
        for node in self.nodes:
            node.start()

    async def stop(self) -> None:
        # Snapshot the membership: stop() suspends per node, and the
        # list must not shift under the iteration if a callback adds or
        # removes a node mid-shutdown.
        for node in list(self.nodes):
            await node.stop()
        self.lan.close()

    @property
    def live_nodes(self) -> "list[AsyncNode]":
        """Nodes that are still functioning members (not crashed, not
        left) — the paper's *active* set, at the runtime layer."""
        return [node for node in self.nodes if node.is_live]

    def quiescent(self) -> bool:
        """All live nodes agree on what was processed and have nothing
        pending or waiting (vacuously true with no live node)."""
        live = self.live_nodes
        if not live:
            return True
        if any(node.member.pending_submissions for node in live):
            return False
        if any(node.member.waiting_length for node in live):
            return False
        return len({node.member.last_processed_vector() for node in live}) == 1

    async def crash(
        self, pid: ProcessId, *, partial_deliveries: int | None = None
    ) -> None:
        """Fail-stop node ``pid``: cut it at the fabric (when the
        fabric supports it, e.g. :class:`~repro.runtime.chaos.ChaosFabric`)
        and halt its tasks.  ``partial_deliveries`` interrupts its next
        multicast after the fabric-level crash (non-indivisible send);
        it requires a chaos fabric and lets the dying broadcast happen
        before the tasks are halted."""
        node = self.nodes[pid]
        fabric_crash = getattr(self.lan, "crash", None)
        if fabric_crash is not None:
            fabric_crash(pid, partial_deliveries=partial_deliveries)
            if partial_deliveries is not None and node.is_live:
                # Give the dying multicast a chance to be attempted:
                # one more full subrun of the node's ticker.
                target = node.current_round + 2
                try:
                    await self.wait_until(
                        lambda: node.current_round >= target or not node.is_live,
                        timeout=2.0,
                    )
                except asyncio.TimeoutError:
                    pass
        await node.crash()

    async def crash_coordinator_at_subrun(
        self,
        subrun: int,
        *,
        partial_deliveries: int | None = None,
        timeout: float = 10.0,
    ) -> ProcessId | None:
        """Kill the rotating coordinator of ``subrun`` once that subrun
        is reached — the paper's coordinator-failover scenario, live.

        Waits until the coordinator's own clock enters ``subrun``, then
        crashes it via :meth:`crash`.  Returns the pid killed, or None
        if no live node could name a coordinator.  With
        ``partial_deliveries=k`` the coordinator's next multicast (its
        decision broadcast, or a data message if it was generating) is
        cut after ``k`` destinations.
        """
        live = self.live_nodes
        if not live:
            return None
        coordinator = live[0].member.view.coordinator_of(SubrunNo(subrun))
        node = self.nodes[coordinator]
        try:
            await self.wait_until(
                lambda: node.current_subrun >= subrun or not node.is_live,
                timeout=timeout,
            )
        except asyncio.TimeoutError:
            pass
        await self.crash(coordinator, partial_deliveries=partial_deliveries)
        return coordinator

    def recover(self, pid: ProcessId) -> AsyncNode:
        """Recover crashed node ``pid`` from its durable state and start
        its rejoin (see :meth:`AsyncNode.recover`).  Returns the node;
        use :meth:`wait_until` on ``not node.member.rejoining`` to await
        admission."""
        node = self.nodes[pid]
        node.recover()
        return node

    async def wait_until(
        self, predicate: Callable[[], bool], *, timeout: float = 10.0
    ) -> None:
        """Poll ``predicate`` until true (or raise TimeoutError)."""

        async def poll() -> None:
            while not predicate():
                await asyncio.sleep(0.005)

        await asyncio.wait_for(poll(), timeout)

    async def run_workload(
        self,
        submissions: list[tuple[ProcessId, bytes]],
        *,
        timeout: float = 10.0,
    ) -> None:
        """Submit payloads, then wait until every live node processed
        every message every live node generated."""
        for pid, payload in submissions:
            self.nodes[pid].submit(payload)
        await self.wait_until(self.quiescent, timeout=timeout)
