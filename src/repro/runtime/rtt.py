"""Round-trip-time estimation for sizing protocol rounds.

The paper pins the protocol's timing to the network: "by assuming the
subrun as long as the round trip delay".  On a real deployment the rtd
is not known a priori and drifts with load, so a node sizes its rounds
from a live estimate: a smoothed RTT (EWMA plus deviation, the classic
RFC 6298 shape) fed by request→decision echoes or explicit probes.

:class:`RttEstimator` is the pure estimation logic;
:class:`AdaptiveRoundTimer` turns an estimate into the round interval
(half the smoothed rtd, clamped), which the asyncio node can consult
every tick.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["RttEstimator", "AdaptiveRoundTimer"]


class RttEstimator:
    """Smoothed RTT with mean deviation (RFC 6298-style).

    ``initial_timeout`` is the pre-sample retransmission timeout (RFC
    6298 §2.1 mandates a conservative initial RTO — 1 second here):
    before the first sample, :meth:`timeout` has no estimate to bound,
    and returning a zero deadline would make a retransmit/suspicion
    caller spin.  Pass ``initial_timeout=None`` to opt out, in which
    case every pre-sample :meth:`timeout` call must supply a positive
    ``floor``.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.125,
        beta: float = 0.25,
        initial_timeout: float | None = 1.0,
    ) -> None:
        if not 0 < alpha < 1 or not 0 < beta < 1:
            raise ConfigError("alpha and beta must be in (0, 1)")
        if initial_timeout is not None and initial_timeout <= 0:
            raise ConfigError(
                f"initial_timeout must be > 0 (or None), got {initial_timeout}"
            )
        self.alpha = alpha
        self.beta = beta
        self.initial_timeout = initial_timeout
        self._srtt: float | None = None
        self._rttvar: float = 0.0
        self.samples = 0

    @property
    def smoothed(self) -> float | None:
        """Current smoothed RTT (None before the first sample)."""
        return self._srtt

    @property
    def deviation(self) -> float:
        return self._rttvar

    def observe(self, rtt: float) -> None:
        """Fold one RTT sample (seconds)."""
        if rtt < 0:
            raise ConfigError(f"rtt must be >= 0, got {rtt}")
        self.samples += 1
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2
            return
        self._rttvar = (1 - self.beta) * self._rttvar + self.beta * abs(
            self._srtt - rtt
        )
        self._srtt = (1 - self.alpha) * self._srtt + self.alpha * rtt

    def timeout(self, *, k: float = 4.0, floor: float = 0.0) -> float:
        """A conservative bound: ``srtt + k * rttvar`` (>= floor).

        Before the first sample there is no estimate; the result is
        then ``max(initial_timeout, floor)`` — never the bare (default
        0.0) floor, which would spin a retransmit or suspicion loop.
        With ``initial_timeout=None`` a positive ``floor`` is required
        pre-sample.
        """
        if self._srtt is None:
            if self.initial_timeout is None:
                if floor <= 0:
                    raise ConfigError(
                        "no RTT sample yet: timeout() needs a positive floor "
                        "when initial_timeout is None"
                    )
                return floor
            return max(self.initial_timeout, floor)
        return max(self._srtt + k * self._rttvar, floor)


class AdaptiveRoundTimer:
    """Derives the round interval from a live RTT estimate.

    One subrun should span one rtd, so one round spans half the
    conservative RTT bound, clamped to ``[min_interval,
    max_interval]``.  Before any sample arrives the initial interval
    is used.
    """

    def __init__(
        self,
        *,
        initial: float = 0.02,
        min_interval: float = 0.002,
        max_interval: float = 1.0,
        estimator: RttEstimator | None = None,
    ) -> None:
        if not 0 < min_interval <= initial <= max_interval:
            raise ConfigError(
                f"need 0 < min <= initial <= max, got "
                f"{min_interval}/{initial}/{max_interval}"
            )
        self.initial = initial
        self.min_interval = min_interval
        self.max_interval = max_interval
        # One round is half an rtd, so the pre-sample rtd guess that is
        # consistent with `initial` is twice it.
        self.estimator = estimator or RttEstimator(initial_timeout=2 * initial)

    def observe(self, rtt: float) -> None:
        self.estimator.observe(rtt)

    def interval(self) -> float:
        """Current round interval (seconds)."""
        if self.estimator.smoothed is None:
            return self.initial
        half_rtd = self.estimator.timeout(floor=self.min_interval * 2) / 2
        return min(max(half_rtd, self.min_interval), self.max_interval)
