"""An in-process asyncio "LAN" for running the sans-IO engines live.

The paper closes with "a first prototype of the algorithm is currently
under development over an Ethernet LAN".  This module is that
prototype's stand-in: the same :class:`~repro.core.member.Member`
engines, driven by wall-clock asyncio tasks over an in-memory datagram
fabric with optional loss injection.  Nothing in :mod:`repro.core`
changes — the engines cannot tell the simulator and the runtime apart.

The fabric mimics a UDP socket API (``sendto`` + per-endpoint receive
queues) so porting to real ``asyncio.DatagramProtocol`` sockets is a
transport swap, not a redesign.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from ..errors import RuntimeTransportError, UnknownAddressError
from ..net.addressing import Address, GroupAddress, UnicastAddress
from ..types import ProcessId

__all__ = ["Datagram", "AsyncLan", "AsyncEndpoint"]


@dataclass(frozen=True)
class Datagram:
    """One datagram on the asyncio fabric."""

    src: ProcessId
    data: bytes
    kind: str = "data"


@dataclass
class AsyncEndpoint:
    """Receive side of one endpoint: an unbounded datagram queue."""

    pid: ProcessId
    queue: "asyncio.Queue[Datagram]" = field(default_factory=asyncio.Queue)

    async def recv(self) -> Datagram:
        return await self.queue.get()


class AsyncLan:
    """In-memory datagram fabric with n-unicast multicast semantics.

    Parameters
    ----------
    loss:
        Probability that any single datagram copy is dropped.
    latency:
        One-way delivery latency in seconds (0 delivers on the next
        event-loop turn).
    seed:
        Seed for the loss process.
    """

    def __init__(
        self, *, loss: float = 0.0, latency: float = 0.0, seed: int = 0
    ) -> None:
        if not 0.0 <= loss < 1.0:
            raise RuntimeTransportError(f"loss must be in [0, 1), got {loss}")
        self.loss = loss
        self.latency = latency
        self._rng = random.Random(seed)
        self._endpoints: dict[ProcessId, AsyncEndpoint] = {}
        self._groups: dict[str, list[ProcessId]] = {}
        self._closed = False
        self.sent_count = 0
        self.dropped_count = 0

    def attach(self, pid: ProcessId) -> AsyncEndpoint:
        """Create (or return) the endpoint for ``pid``."""
        endpoint = self._endpoints.get(pid)
        if endpoint is None:
            endpoint = self._endpoints[pid] = AsyncEndpoint(pid)
        return endpoint

    def join(self, group: GroupAddress, pid: ProcessId) -> None:
        members = self._groups.setdefault(group.name, [])
        if pid not in members:
            members.append(pid)

    def close(self) -> None:
        self._closed = True

    def sendto(self, src: ProcessId, dst: Address, data: bytes, *, kind: str = "data") -> None:
        """Fire-and-forget datagram send (UDP semantics)."""
        if self._closed:
            raise RuntimeTransportError("LAN is closed")
        if isinstance(dst, UnicastAddress):
            targets = [dst.pid]
        elif isinstance(dst, GroupAddress):
            members = self._groups.get(dst.name)
            if members is None:
                raise UnknownAddressError(dst.name)
            targets = [pid for pid in members if pid != src]
        else:
            raise UnknownAddressError(str(dst))
        self.sent_count += 1
        datagram = Datagram(src, data, kind)
        for pid in targets:
            if self.loss and self._rng.random() < self.loss:
                self.dropped_count += 1
                continue
            endpoint = self._endpoints.get(pid)
            if endpoint is None:
                self.dropped_count += 1
                continue
            if self.latency:
                asyncio.get_running_loop().call_later(
                    self.latency, endpoint.queue.put_nowait, datagram
                )
            else:
                endpoint.queue.put_nowait(datagram)
