"""Fault-injecting wrapper around any live datagram fabric.

The simulator exercises the paper's whole general-omission model —
crashes with partial final broadcasts, send/receive omissions,
partitions — but the asyncio runtime could only inject uniform
Bernoulli loss.  :class:`ChaosFabric` closes that gap: it implements
the fabric surface (``attach`` / ``join`` / ``sendto`` / ``close``)
around an inner :class:`~repro.runtime.lan.AsyncLan` or
:class:`~repro.runtime.udp.UdpFabric` and runs every datagram through
the *same* :class:`~repro.net.faults.FaultPlan` the simulated
:class:`~repro.net.network.DatagramNetwork` consults, so one fault
spec drives both worlds.

On top of the plan's drop faults it adds the live-only misbehaviours a
real subnetwork exhibits:

* **duplication** — a delivered copy is occasionally delivered twice;
* **reordering / delay jitter** — each copy is held back a bounded
  random time before it is handed to the inner fabric, so two
  datagrams on the same path can overtake each other;
* **crash with partial broadcast** — the paper's non-indivisible
  ``send``: the first multicast a process attempts at or after its
  scheduled crash instant reaches only its first *k* destinations, and
  everything after that is dropped.

Every dropped copy is attributed to a cause in ``stats.drop_reasons``
(see :class:`~repro.net.stats.NetworkStats`).
"""

from __future__ import annotations

import asyncio
import random

from ..errors import RuntimeTransportError, UnknownAddressError
from ..net.addressing import Address, GroupAddress, UnicastAddress
from ..net.faults import FaultPlan
from ..net.packet import Packet
from ..net.stats import MetricSink, NetworkStats
from ..types import ProcessId

__all__ = ["ChaosFabric"]


class ChaosFabric:
    """Composable fault injection for the asyncio runtime.

    Parameters
    ----------
    inner:
        The real fabric (``AsyncLan``, ``UdpFabric``, or anything with
        the same surface) that ultimately carries the datagrams.
    faults:
        The fault plan; crashes, omissions, partitions and custom
        filters all apply.  Fault-plan time is seconds since the first
        send on this fabric (see :meth:`now`).
    duplication:
        Probability that a delivered copy is delivered twice.
    jitter:
        Maximum extra hold-back in seconds applied to each copy
        (uniform in ``[0, jitter]``); non-zero jitter reorders
        datagrams on the same path.
    seed:
        Seed for the duplication/jitter randomness (the drop faults
        use the plan's own rng, so a shared plan stays reproducible).
    """

    def __init__(
        self,
        inner,
        faults: FaultPlan | None = None,
        *,
        duplication: float = 0.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= duplication < 1.0:
            raise RuntimeTransportError(
                f"duplication must be in [0, 1), got {duplication}"
            )
        if jitter < 0.0:
            raise RuntimeTransportError(f"jitter must be >= 0, got {jitter}")
        self.inner = inner
        self.faults = faults or FaultPlan()
        self.duplication = duplication
        self.jitter = jitter
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._groups: dict[str, list[ProcessId]] = {}
        self._epoch: float | None = None
        self._closed = False
        #: Processes whose fail-stop the fabric has already enforced
        #: (their dying multicast, if any, has been cut).
        self._dead: set[ProcessId] = set()
        self.sent_count = 0
        self.dropped_count = 0
        self.delivered_count = 0
        self.duplicated_count = 0
        self.mutated_count = 0
        self._registry: MetricSink | None = None

    def bind_registry(self, registry: MetricSink) -> None:
        """Mirror traffic accounting into a shared observability
        registry: the per-kind send/deliver/drop counters (via
        :meth:`NetworkStats.bind`, prefix ``chaos``) plus a
        ``chaos.duplicated`` counter for the fabric's own duplication
        fault.  :class:`~repro.runtime.node.AsyncGroup` calls this when
        observability is enabled."""
        self.stats.bind(registry, prefix="chaos")
        self._registry = registry

    # -- fabric surface --------------------------------------------------

    def attach(self, pid: ProcessId):
        """Create/return the receive endpoint for ``pid`` (delegated)."""
        return self.inner.attach(pid)

    def join(self, group: GroupAddress, pid: ProcessId) -> None:
        members = self._groups.setdefault(group.name, [])
        if pid not in members:
            members.append(pid)
        self.inner.join(group, pid)

    def close(self) -> None:
        self._closed = True
        self.inner.close()

    def now(self) -> float:
        """Fault-plan time: seconds since the fabric first carried
        traffic (0.0 before that)."""
        if self._epoch is None:
            return 0.0
        return asyncio.get_running_loop().time() - self._epoch

    def sendto(
        self, src: ProcessId, dst: Address, data: bytes, *, kind: str = "data"
    ) -> None:
        """Fire-and-forget send through the whole fault pipeline."""
        if self._closed:
            raise RuntimeTransportError("fabric is closed")
        if self._epoch is None:
            self._epoch = asyncio.get_running_loop().time()
        now = self.now()
        targets = self._expand(dst, src)
        packet = Packet(src, dst, data, kind)
        self.sent_count += 1
        self.stats.on_sent(packet)

        dying = False
        crash_time = self.faults.crashes.crash_time(src)
        if crash_time is not None and now >= crash_time:
            if src not in self._dead:
                self._dead.add(src)
                if self.faults.crashes.partial_budget(src) is not None:
                    # The paper's non-indivisible send: this is the
                    # multicast interrupted by the crash; only the
                    # first k destination copies survive (budget
                    # consumed per destination below).
                    dying = True
            if not dying:
                self._drop_all(packet, targets, "src-crashed")
                return
        else:
            decision = self.faults.check_send_faults(packet, now)
            if decision.dropped:
                self._drop_all(packet, targets, decision.reason)
                return

        for target in targets:
            if dying and not self.faults.crashes.consume_partial(src):
                self._drop(packet, "src-crashed-midsend")
                continue
            if self.faults.crashes.is_crashed(target, now):
                self._drop(packet, "dst-crashed")
                continue
            decision = self.faults.check_receive_faults(packet, target, now)
            if decision.dropped:
                self._drop(packet, decision.reason)
                continue
            mutated = self.faults.mutate(packet, target, now)
            copy = data
            if mutated is not None:
                # Adversarial per-destination rewrite (PROTOCOL §13):
                # carried verbatim; the receiver's decode/validation
                # layer is what is under test.
                copy = mutated
                self.mutated_count += 1
                if self._registry is not None:
                    self._registry.count("chaos.mutated", kind=kind)
            self._deliver_copy(src, target, copy, kind, packet)
            if self.duplication and self._rng.random() < self.duplication:
                self.duplicated_count += 1
                if self._registry is not None:
                    self._registry.count("chaos.duplicated", kind=kind)
                self._deliver_copy(src, target, copy, kind, packet)

    # -- lifecycle helpers -----------------------------------------------

    def crash(
        self, pid: ProcessId, *, partial_deliveries: int | None = None
    ) -> None:
        """Fail-stop ``pid`` *now* at the fabric level.

        With ``partial_deliveries=k`` the next multicast ``pid``
        attempts is its dying one: only the first ``k`` destination
        copies are carried.  Without it, every further datagram from
        (or to) ``pid`` is dropped immediately.  Registers the crash
        in the plan's :class:`~repro.net.faults.CrashSchedule` so the
        group-membership view of the fault spec stays unified.
        """
        self.faults.crashes.crash(pid, self.now(), partial_deliveries=partial_deliveries)
        if partial_deliveries is None:
            self._dead.add(pid)

    def is_crashed(self, pid: ProcessId) -> bool:
        return self.faults.crashes.is_crashed(pid, self.now())

    def revive(self, pid: ProcessId) -> None:
        """Let a recovered ``pid`` carry traffic again: clears both the
        fabric's dead set and the plan's crash schedule, so the new
        incarnation can later be crashed afresh."""
        self._dead.discard(pid)
        self.faults.crashes.revive(pid)

    # -- internals -------------------------------------------------------

    def _expand(self, dst: Address, src: ProcessId) -> list[ProcessId]:
        if isinstance(dst, UnicastAddress):
            return [dst.pid]
        if isinstance(dst, GroupAddress):
            members = self._groups.get(dst.name)
            if members is None:
                raise UnknownAddressError(dst.name)
            return [pid for pid in members if pid != src]
        raise UnknownAddressError(str(dst))

    def _drop(self, packet: Packet, reason: str) -> None:
        self.dropped_count += 1
        self.stats.on_dropped(packet, reason)

    def _drop_all(self, packet: Packet, targets: list[ProcessId], reason: str) -> None:
        for _ in targets:
            self._drop(packet, reason)

    def _deliver_copy(
        self,
        src: ProcessId,
        target: ProcessId,
        data: bytes,
        kind: str,
        packet: Packet,
    ) -> None:
        delay = self._rng.uniform(0.0, self.jitter) if self.jitter else 0.0
        if delay:
            asyncio.get_running_loop().call_later(
                delay, self._forward, src, target, data, kind, packet
            )
        else:
            self._forward(src, target, data, kind, packet)

    def _forward(
        self,
        src: ProcessId,
        target: ProcessId,
        data: bytes,
        kind: str,
        packet: Packet,
    ) -> None:
        if self._closed:
            # A jittered copy outlived the fabric: a loss, not an error.
            self._drop(packet, "fabric-closed")
            return
        self.delivered_count += 1
        self.stats.on_delivered(packet)
        self.inner.sendto(src, UnicastAddress(target), data, kind=kind)
