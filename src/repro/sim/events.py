"""Event objects and the priority queue driving the simulation kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number makes ordering total and deterministic: two events scheduled for
the same instant with the same priority fire in scheduling order, which
keeps every simulation reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ScheduleInPastError
from ..types import Time

__all__ = ["Event", "EventQueue", "PRIORITY_NETWORK", "PRIORITY_ROUND", "PRIORITY_DEFAULT"]

#: Packet deliveries fire before round ticks scheduled at the same
#: instant, so a round handler sees everything "already on the wire".
PRIORITY_NETWORK = 0
PRIORITY_ROUND = 10
PRIORITY_DEFAULT = 20


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Comparison fields come first so heapq can order events directly;
    the callback and its payload are excluded from comparison.
    """

    time: Time
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now: Time = 0.0

    @property
    def now(self) -> Time:
        """Time of the most recently popped event (0.0 initially)."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def push(
        self,
        time: Time,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_DEFAULT,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time``; returns a cancellable handle."""
        if time < self._now:
            raise ScheduleInPastError(
                f"cannot schedule {label or action!r} at t={time} < now={self._now}"
            )
        event = Event(time, priority, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the next non-cancelled event, advancing the clock.

        Returns ``None`` when the queue is exhausted.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            return event
        return None

    def peek_time(self) -> Time | None:
        """Return the time of the next pending event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every pending event (the clock is left untouched)."""
        self._heap.clear()
