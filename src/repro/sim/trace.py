"""Structured trace log for simulations.

The trace is an append-only list of typed records.  Experiments use it
to reconstruct time series (history length over time, delivery events
for delay measurements) and tests use it to assert on protocol
behaviour without poking engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..types import Time

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: what happened, when, and to whom."""

    time: Time
    kind: str
    actor: int | None
    details: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.details[key]


class Trace:
    """Append-only event log with simple query helpers."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def emit(self, time: Time, kind: str, actor: int | None = None, **details: Any) -> None:
        """Record an event (no-op when tracing is disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, kind, actor, details))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        kind: str | None = None,
        actor: int | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Return records matching all the given filters."""
        out = []
        for rec in self._records:
            if kind is not None and rec.kind != kind:
                continue
            if actor is not None and rec.actor != actor:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def last(self, kind: str) -> TraceRecord | None:
        """Return the most recent record of ``kind``, if any."""
        for rec in reversed(self._records):
            if rec.kind == kind:
                return rec
        return None

    def clear(self) -> None:
        self._records.clear()
