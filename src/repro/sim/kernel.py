"""The discrete-event simulation kernel.

The kernel owns the event queue, the simulated clock (in rtd units),
the RNG registry, the trace, and the metric set.  Protocol drivers
schedule callbacks on it; the kernel runs them in deterministic order
until the queue drains, a time horizon is reached, or a stop condition
fires.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import KernelStoppedError
from ..types import Time
from .events import PRIORITY_DEFAULT, Event, EventQueue
from .metrics import MetricSet
from .rng import RngRegistry
from .trace import Trace

__all__ = ["Kernel"]


class Kernel:
    """Deterministic discrete-event simulator core.

    Parameters
    ----------
    seed:
        Root seed for every random stream in the simulation.
    trace:
        Record a structured trace (disable for large parameter sweeps
        where only metrics are needed).
    """

    def __init__(self, *, seed: int = 0, trace: bool = True) -> None:
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.trace = Trace(enabled=trace)
        self.metrics = MetricSet()
        self._running = False
        self._stopped = False
        self._stop_reason: str | None = None

    @property
    def now(self) -> Time:
        """Current simulated time in rtd units."""
        return self.queue.now

    @property
    def stop_reason(self) -> str | None:
        """Why the last run ended (``None`` if it drained the queue)."""
        return self._stop_reason

    def schedule(
        self,
        delay: Time,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_DEFAULT,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` ``delay`` rtd units from now."""
        return self.queue.push(self.now + delay, action, priority=priority, label=label)

    def schedule_at(
        self,
        time: Time,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_DEFAULT,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute time ``time``."""
        return self.queue.push(time, action, priority=priority, label=label)

    def stop(self, reason: str = "stopped") -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True
        self._stop_reason = reason

    def run(
        self,
        *,
        until: Time | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> int:
        """Run events until the queue drains or a limit is hit.

        Parameters
        ----------
        until:
            Exclusive time horizon; events at ``time > until`` stay queued.
        max_events:
            Safety valve against runaway simulations.
        stop_when:
            Checked after every event; the run stops when it is true.

        Returns the number of events executed.
        """
        if self._running:
            raise KernelStoppedError("kernel.run() is not reentrant")
        self._running = True
        self._stopped = False
        self._stop_reason = None
        executed = 0
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    self._stop_reason = "max_events"
                    break
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._stop_reason = "horizon"
                    break
                event = self.queue.pop()
                assert event is not None
                event.action()
                executed += 1
                if stop_when is not None and stop_when():
                    self._stop_reason = "condition"
                    break
        finally:
            self._running = False
        return executed
