"""Seeded, named random-number streams.

Every stochastic component (per-link loss, per-process omission, the
workload generator, ...) draws from its own named stream derived from
the experiment's root seed.  Adding a new consumer therefore never
perturbs the draws seen by existing ones, which keeps regression
baselines stable across library versions.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed is derived from the
    root seed and the name with BLAKE2, so streams are statistically
    independent and stable across runs and platforms.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry derives all streams from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.blake2b(
                f"{self._seed}:{name}".encode(), digest_size=8
            ).digest()
            rng = random.Random(int.from_bytes(digest, "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are disjoint from ours."""
        digest = hashlib.blake2b(
            f"{self._seed}/fork/{name}".encode(), digest_size=8
        ).digest()
        return RngRegistry(int.from_bytes(digest, "big"))
