"""Simulation metrics — now a façade over :mod:`repro.obs.metrics`.

The seed-era ``MetricSet`` bag grew into the unified observability
registry (:class:`repro.obs.Registry`): counters, gauges, time series
and exact-percentile histograms, shared by the simulator kernel, the
asyncio runtime, the fault fabrics and the storage layer.  This module
re-exports the primitives under their historical names so existing
imports (``from repro.sim.metrics import ...``) keep working;
``MetricSet`` is an alias of ``Registry``.
"""

from __future__ import annotations

from ..obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    Registry,
    Series,
    Summary,
    summarize,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "Summary",
    "summarize",
    "MetricSet",
    "Registry",
]
