"""Lightweight metrics: counters, time series, and summary statistics.

The experiment harness aggregates everything the paper's evaluation
reports — mean end-to-end delay, control-message counts and byte
volumes, history occupancy over time — from these primitives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..types import Time

__all__ = ["Counter", "Series", "Summary", "summarize", "MetricSet"]


class Counter:
    """A monotonic named counter."""

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a Series for gauges")
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Series:
    """A time series of ``(time, value)`` samples."""

    def __init__(self) -> None:
        self._samples: list[tuple[Time, float]] = []

    def record(self, time: Time, value: float) -> None:
        self._samples.append((time, value))

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[tuple[Time, float]]:
        return iter(self._samples)

    @property
    def times(self) -> list[Time]:
        return [t for t, _ in self._samples]

    @property
    def values(self) -> list[float]:
        return [v for _, v in self._samples]

    def max(self) -> float:
        """Largest sampled value (0.0 for an empty series)."""
        return max((v for _, v in self._samples), default=0.0)

    def last(self) -> float | None:
        return self._samples[-1][1] if self._samples else None

    def at_or_before(self, time: Time) -> float | None:
        """Value of the latest sample with timestamp <= ``time``."""
        best = None
        for t, v in self._samples:
            if t <= time:
                best = v
            else:
                break
        return best


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample set."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:  # human-readable one-liner for reports
        return (
            f"n={self.count} mean={self.mean:.3f} sd={self.stdev:.3f} "
            f"min={self.minimum:.3f} p50={self.p50:.3f} p95={self.p95:.3f} "
            f"max={self.maximum:.3f}"
        )


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize(samples: Iterable[float]) -> Summary:
    """Compute :class:`Summary` statistics over ``samples``."""
    data = sorted(samples)
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    n = len(data)
    mean = sum(data) / n
    var = sum((x - mean) ** 2 for x in data) / n
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(var),
        minimum=data[0],
        maximum=data[-1],
        p50=_percentile(data, 0.50),
        p95=_percentile(data, 0.95),
    )


@dataclass
class MetricSet:
    """A named bag of counters and series, shared by one simulation."""

    counters: dict[str, Counter] = field(default_factory=dict)
    series: dict[str, Series] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter ``name``."""
        ctr = self.counters.get(name)
        if ctr is None:
            ctr = self.counters[name] = Counter()
        return ctr

    def series_for(self, name: str) -> Series:
        """Return (creating if needed) the series ``name``."""
        ser = self.series.get(name)
        if ser is None:
            ser = self.series[name] = Series()
        return ser

    def count(self, name: str, amount: int = 1) -> None:
        self.counter(name).add(amount)

    def sample(self, name: str, time: Time, value: float) -> None:
        self.series_for(name).record(time, value)
