"""Discrete-event simulation kernel.

Deterministic event queue, rtd-denominated clock, seeded RNG streams,
structured tracing, metric collection, and round scheduling — the
substrate every experiment in the paper's evaluation runs on.
"""

from .events import PRIORITY_DEFAULT, PRIORITY_NETWORK, PRIORITY_ROUND, Event, EventQueue
from .kernel import Kernel
from .metrics import Counter, MetricSet, Series, Summary, summarize
from .rng import RngRegistry
from .rounds import RoundScheduler
from .trace import Trace, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "PRIORITY_DEFAULT",
    "PRIORITY_NETWORK",
    "PRIORITY_ROUND",
    "Kernel",
    "Counter",
    "MetricSet",
    "Series",
    "Summary",
    "summarize",
    "RngRegistry",
    "RoundScheduler",
    "Trace",
    "TraceRecord",
]
