"""Round scheduling on top of the event kernel.

The paper's algorithm is round-synchronous: "communications proceed in
rounds" and a subrun (two rounds) lasts one round-trip delay.  The
:class:`RoundScheduler` fires a tick every half-rtd and invokes the
registered handlers in deterministic (registration) order; network
deliveries scheduled for the same instant fire *before* the tick (see
:data:`repro.sim.events.PRIORITY_NETWORK`), so a round handler observes
every packet that arrived "by" the round boundary.
"""

from __future__ import annotations

from typing import Callable

from ..types import ROUNDS_PER_SUBRUN, RTD_PER_SUBRUN, Time
from .events import PRIORITY_ROUND
from .kernel import Kernel

__all__ = ["RoundScheduler"]

RoundHandler = Callable[[int], None]


class RoundScheduler:
    """Drives synchronous rounds over a :class:`Kernel`.

    Handlers receive the round number.  The scheduler stops rescheduling
    itself once :meth:`stop` is called or ``max_rounds`` is reached, so
    a kernel run terminates naturally when the protocol goes quiescent.
    """

    def __init__(self, kernel: Kernel, *, max_rounds: int | None = None) -> None:
        self._kernel = kernel
        self._handlers: list[RoundHandler] = []
        self._round = 0
        self._stopped = False
        self._max_rounds = max_rounds
        self._started = False
        #: A tick is sitting in the kernel's queue (guards resume()
        #: against double-scheduling the tick chain).
        self._pending = False

    @property
    def current_round(self) -> int:
        """The most recently fired round (0 before the first tick)."""
        return self._round

    @property
    def round_duration(self) -> Time:
        return RTD_PER_SUBRUN / ROUNDS_PER_SUBRUN

    def subscribe(self, handler: RoundHandler) -> None:
        """Register a per-round handler (called in registration order)."""
        self._handlers.append(handler)

    def start(self) -> None:
        """Schedule round 0 at the current kernel time."""
        if self._started:
            raise RuntimeError("RoundScheduler already started")
        self._started = True
        self._pending = True
        self._kernel.schedule_at(
            self._kernel.now, self._tick, priority=PRIORITY_ROUND, label="round-0"
        )

    def stop(self) -> None:
        """Stop scheduling further rounds after the current one."""
        self._stopped = True

    def resume(self) -> None:
        """Restart round scheduling after a :meth:`stop`.

        Long-lived drivers (the sharded service tier) reuse a cluster
        across quiescent phases: a run stops the rounds, later work —
        failover salvage, topic handoff — needs them ticking again.
        No-op while a tick is already queued, so calling it every
        driver step is safe; a ``max_rounds``-exhausted scheduler stays
        stopped (the budget is a hard cap, not a pause).
        """
        self._stopped = False
        if not self._started:
            self.start()
            return
        if self._pending:
            return
        if self._max_rounds is not None and self._round >= self._max_rounds:
            return
        self._schedule_next()

    def _schedule_next(self) -> None:
        self._pending = True
        self._kernel.schedule(
            self.round_duration,
            self._tick,
            priority=PRIORITY_ROUND,
            label=f"round-{self._round}",
        )

    def _tick(self) -> None:
        self._pending = False
        round_no = self._round
        for handler in list(self._handlers):
            handler(round_no)
        self._round += 1
        if self._stopped:
            return
        if self._max_rounds is not None and self._round >= self._max_rounds:
            return
        self._schedule_next()
