"""Protocol data units of the urcgc protocol, with binary codecs.

Five PDUs cross the wire (Section 4 / Figure 1):

* :class:`UserMessage` — an application message: mid, the explicit
  causal-dependency list, payload.
* :class:`RequestMessage` — per-subrun report from each process to the
  coordinator: ``last_processed`` vector, oldest-waiting vector, and
  the most recent decision the sender received (decision circulation).
* :class:`DecisionMessage` — the coordinator's broadcast decision.
* :class:`RecoveryRequest` / :class:`RecoveryResponse` — point-to-point
  recovery from a peer's history.

Everything encodes to real bytes (network byte order) via
:mod:`repro.net.wire`, so Table 1's size accounting measures genuine
wire sizes rather than field counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WireFormatError
from ..net.wire import Reader, Writer, global_registry
from ..types import ProcessId, SeqNo, SubrunNo
from .causality import validate_deps
from .decision import Decision, RequestInfo
from .mid import Mid

__all__ = [
    "UserMessage",
    "GenerateBatch",
    "RequestMessage",
    "DecisionMessage",
    "RecoveryRequest",
    "RecoveryResponse",
    "HeartbeatMessage",
    "KIND_DATA",
    "KIND_BATCH",
    "KIND_REQUEST",
    "KIND_DECISION",
    "KIND_RECOVERY_RQ",
    "KIND_RECOVERY_RSP",
    "KIND_HEARTBEAT",
]

#: Packet-kind labels used for traffic accounting (Table 1 separates
#: data traffic from control traffic).
KIND_DATA = "data"
KIND_BATCH = "batch"
KIND_REQUEST = "ctrl-request"
KIND_DECISION = "ctrl-decision"
KIND_RECOVERY_RQ = "ctrl-recovery-rq"
KIND_RECOVERY_RSP = "ctrl-recovery-rsp"
KIND_HEARTBEAT = "ctrl-heartbeat"

_TAG_USER = 10
_TAG_REQUEST = 11
_TAG_DECISION = 12
_TAG_RECOVERY_RQ = 13
_TAG_RECOVERY_RSP = 14
_TAG_GENERATE_BATCH = 17
_TAG_HEARTBEAT = 18


def _write_mid(writer: Writer, mid: Mid) -> None:
    writer.u16(mid.origin)
    writer.u32(mid.seq)


def _read_mid(reader: Reader) -> Mid:
    origin = reader.u16()
    seq = reader.u32()
    return Mid(ProcessId(origin), SeqNo(seq))


def _write_bitmask(writer: Writer, flags: tuple[bool, ...]) -> None:
    writer.u16(len(flags))
    byte = 0
    for i, flag in enumerate(flags):
        if flag:
            byte |= 1 << (i % 8)
        if i % 8 == 7:
            writer.u8(byte)
            byte = 0
    if len(flags) % 8 != 0:
        writer.u8(byte)


def _read_bitmask(reader: Reader) -> tuple[bool, ...]:
    count = reader.u16()
    flags: list[bool] = []
    byte = 0
    for i in range(count):
        if i % 8 == 0:
            byte = reader.u8()
        flags.append(bool(byte & (1 << (i % 8))))
    return tuple(flags)


@dataclass(frozen=True)
class UserMessage:
    """An application message with explicit causal dependencies."""

    mid: Mid
    deps: tuple[Mid, ...]
    payload: bytes = b""

    def __post_init__(self) -> None:
        validate_deps(self.mid, self.deps)

    def encode_fields(self, writer: Writer) -> None:
        _write_mid(writer, self.mid)
        if len(self.deps) > 0xFF:
            raise WireFormatError(f"{self.mid} has {len(self.deps)} deps (max 255)")
        writer.u8(len(self.deps))
        for dep in self.deps:
            _write_mid(writer, dep)
        writer.bytes_field(self.payload)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "UserMessage":
        mid = _read_mid(reader)
        deps = tuple(_read_mid(reader) for _ in range(reader.u8()))
        payload = reader.bytes_field()
        return cls(mid, deps, payload)


@dataclass(frozen=True)
class GenerateBatch:
    """Several consecutive own-sequence messages in one GENERATE.

    Messages a member generates back to back within one round share
    their external dependencies (its own processing between them adds
    none), so a burst encodes as: the origin, the first seq, the shared
    external dependency vector once, a per-message flag saying whether
    the message carries it, and the payloads.  :meth:`expand`
    reconstructs the exact :class:`UserMessage` tuple — each message's
    dependency list is its predecessor (seq contiguity) plus the shared
    vector when flagged — so batching is invisible above the wire.
    """

    origin: ProcessId
    first_seq: SeqNo
    shared_deps: tuple[Mid, ...]
    ext_flags: tuple[bool, ...]
    payloads: tuple[bytes, ...]

    def __post_init__(self) -> None:
        if not self.payloads:
            raise WireFormatError("empty GenerateBatch")
        if len(self.ext_flags) != len(self.payloads):
            raise WireFormatError(
                f"GenerateBatch flag/payload mismatch: "
                f"{len(self.ext_flags)} != {len(self.payloads)}"
            )
        if self.first_seq < 1:
            raise WireFormatError(f"bad first_seq {self.first_seq}")
        for dep in self.shared_deps:
            if dep.origin == self.origin:
                raise WireFormatError(
                    f"shared dependency {dep} names the batch origin "
                    f"{self.origin} (predecessors are implicit)"
                )

    def __len__(self) -> int:
        return len(self.payloads)

    def expand(self) -> tuple[UserMessage, ...]:
        """The batched messages, exactly as generated."""
        messages = []
        for index, payload in enumerate(self.payloads):
            mid = Mid(self.origin, SeqNo(self.first_seq + index))
            predecessor = mid.predecessor
            deps: tuple[Mid, ...] = () if predecessor is None else (predecessor,)
            if self.ext_flags[index]:
                deps += self.shared_deps
            messages.append(UserMessage(mid, deps, payload))
        return tuple(messages)

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.origin)
        writer.u32(self.first_seq)
        if len(self.shared_deps) > 0xFF:
            raise WireFormatError(
                f"GenerateBatch has {len(self.shared_deps)} shared deps (max 255)"
            )
        writer.u8(len(self.shared_deps))
        for dep in self.shared_deps:
            _write_mid(writer, dep)
        _write_bitmask(writer, self.ext_flags)
        for payload in self.payloads:
            writer.bytes_field(payload)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "GenerateBatch":
        origin = ProcessId(reader.u16())
        first_seq = SeqNo(reader.u32())
        shared_deps = tuple(_read_mid(reader) for _ in range(reader.u8()))
        ext_flags = _read_bitmask(reader)
        payloads = tuple(reader.bytes_field() for _ in range(len(ext_flags)))
        return cls(origin, first_seq, shared_deps, ext_flags, payloads)


def _write_seq_vector(writer: Writer, values: tuple[SeqNo, ...]) -> None:
    writer.u32_list(values)


def _read_seq_vector(reader: Reader) -> tuple[SeqNo, ...]:
    return tuple(SeqNo(v) for v in reader.u32_list())


def _write_decision(writer: Writer, decision: Decision) -> None:
    writer.u32(decision.number + 1)  # number starts at -1
    writer.u32(decision.chain)
    writer.u16(decision.coordinator)
    _write_bitmask(writer, decision.alive)
    writer.u16(len(decision.attempts))
    for value in decision.attempts:
        writer.u8(min(value, 0xFF))
    _write_seq_vector(writer, decision.stable)
    _write_bitmask(writer, decision.contributors)
    writer.boolean(decision.full_group)
    _write_seq_vector(writer, decision.max_processed)
    writer.u16(len(decision.most_updated))
    for pid in decision.most_updated:
        writer.u16(pid)
    _write_seq_vector(writer, decision.min_waiting)
    writer.u32(decision.full_group_count)
    # Rejoin extension (all empty without enable_rejoin: 6 bytes).
    writer.u16(len(decision.joiners))
    for pid in decision.joiners:
        writer.u16(pid)
    _write_seq_vector(writer, decision.void_from)
    _write_seq_vector(writer, decision.join_boundary)


def _read_decision(reader: Reader) -> Decision:
    number = SubrunNo(reader.u32() - 1)
    chain = reader.u32()
    coordinator = ProcessId(reader.u16())
    alive = _read_bitmask(reader)
    attempts = tuple(reader.u8() for _ in range(reader.u16()))
    stable = _read_seq_vector(reader)
    contributors = _read_bitmask(reader)
    full_group = reader.boolean()
    max_processed = _read_seq_vector(reader)
    most_updated = tuple(ProcessId(reader.u16()) for _ in range(reader.u16()))
    min_waiting = _read_seq_vector(reader)
    full_group_count = reader.u32()
    joiners = tuple(ProcessId(reader.u16()) for _ in range(reader.u16()))
    void_from = _read_seq_vector(reader)
    join_boundary = _read_seq_vector(reader)
    return Decision(
        number=number,
        chain=chain,
        coordinator=coordinator,
        alive=alive,
        attempts=attempts,
        stable=stable,
        contributors=contributors,
        full_group=full_group,
        max_processed=max_processed,
        most_updated=most_updated,
        min_waiting=min_waiting,
        full_group_count=full_group_count,
        joiners=joiners,
        void_from=void_from,
        join_boundary=join_boundary,
    )


@dataclass(frozen=True)
class RequestMessage:
    """Per-subrun report from ``sender`` to the subrun's coordinator."""

    sender: ProcessId
    subrun: SubrunNo
    info: RequestInfo
    decision: Decision

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        writer.u32(self.subrun)
        _write_seq_vector(writer, self.info.last_processed)
        _write_seq_vector(writer, self.info.waiting)
        _write_decision(writer, self.decision)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "RequestMessage":
        sender = ProcessId(reader.u16())
        subrun = SubrunNo(reader.u32())
        last_processed = _read_seq_vector(reader)
        waiting = _read_seq_vector(reader)
        decision = _read_decision(reader)
        return cls(sender, subrun, RequestInfo(last_processed, waiting), decision)


@dataclass(frozen=True)
class DecisionMessage:
    """The coordinator's decision broadcast."""

    decision: Decision

    def encode_fields(self, writer: Writer) -> None:
        _write_decision(writer, self.decision)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "DecisionMessage":
        return cls(_read_decision(reader))


@dataclass(frozen=True)
class RecoveryRequest:
    """Ask a peer for missing seq ranges, one ``(origin, first, last)``
    triple per sequence with a gap."""

    sender: ProcessId
    ranges: tuple[tuple[ProcessId, SeqNo, SeqNo], ...]

    def __post_init__(self) -> None:
        for origin, first, last in self.ranges:
            if first < 1 or last < first:
                raise WireFormatError(
                    f"bad recovery range ({origin}, {first}, {last})"
                )

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        writer.u16(len(self.ranges))
        for origin, first, last in self.ranges:
            writer.u16(origin)
            writer.u32(first)
            writer.u32(last)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "RecoveryRequest":
        sender = ProcessId(reader.u16())
        count = reader.u16()
        ranges = tuple(
            (ProcessId(reader.u16()), SeqNo(reader.u32()), SeqNo(reader.u32()))
            for _ in range(count)
        )
        return cls(sender, ranges)


@dataclass(frozen=True)
class RecoveryResponse:
    """Messages retrieved from the responder's history."""

    sender: ProcessId
    messages: tuple[UserMessage, ...] = field(default_factory=tuple)

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        writer.u16(len(self.messages))
        for message in self.messages:
            inner = Writer()
            message.encode_fields(inner)
            writer.bytes_field(inner.getvalue())

    @classmethod
    def decode_fields(cls, reader: Reader) -> "RecoveryResponse":
        sender = ProcessId(reader.u16())
        count = reader.u16()
        messages = []
        for _ in range(count):
            inner = Reader(reader.bytes_field())
            messages.append(UserMessage.decode_fields(inner))
            inner.expect_end()
        return cls(sender, tuple(messages))


@dataclass(frozen=True)
class HeartbeatMessage:
    """A liveness beacon for the heartbeat failure detector.

    Broadcast once per ``heartbeat_every`` subruns when
    ``UrcgcConfig.failure_detector`` selects the heartbeat kind
    (PROTOCOL §13).  Carries the sender's incarnation so a detector can
    tell a rejoined slot's beacons from its previous life's stragglers,
    and the sender's round number for diagnostics.
    """

    sender: ProcessId
    incarnation: int
    round_no: int

    def __post_init__(self) -> None:
        if self.sender < 0 or self.incarnation < 0 or self.round_no < 0:
            raise WireFormatError(
                f"bad heartbeat ({self.sender}, {self.incarnation}, {self.round_no})"
            )

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        writer.u32(self.incarnation)
        writer.u32(self.round_no)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "HeartbeatMessage":
        sender = ProcessId(reader.u16())
        incarnation = reader.u32()
        round_no = reader.u32()
        return cls(sender, incarnation, round_no)


global_registry.register(_TAG_USER, UserMessage, UserMessage.decode_fields)
global_registry.register(
    _TAG_GENERATE_BATCH, GenerateBatch, GenerateBatch.decode_fields
)
global_registry.register(_TAG_REQUEST, RequestMessage, RequestMessage.decode_fields)
global_registry.register(_TAG_DECISION, DecisionMessage, DecisionMessage.decode_fields)
global_registry.register(_TAG_RECOVERY_RQ, RecoveryRequest, RecoveryRequest.decode_fields)
global_registry.register(
    _TAG_RECOVERY_RSP, RecoveryResponse, RecoveryResponse.decode_fields
)
global_registry.register(
    _TAG_HEARTBEAT, HeartbeatMessage, HeartbeatMessage.decode_fields
)
