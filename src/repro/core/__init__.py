"""The urcgc protocol core — the paper's primary contribution.

Sans-IO implementation of the Uniform Reliable Causal Group
Communication algorithm: application-declared causal dependencies,
rotating-coordinator decisions, history buffers with agreed cleaning,
point-to-point recovery, orphan-sequence discard, and the distributed
flow control of Section 6.
"""

from .causality import (
    CausalContext,
    ContiguousDependencyTracker,
    FullCausalContext,
    SetDependencyTracker,
    validate_deps,
)
from .config import LeaveRule, UrcgcConfig
from .decision import Decision, RequestInfo, compute_decision, initial_decision
from .deliverer import CausalDeliverer
from .effects import (
    Confirm,
    DecisionApplied,
    Deliver,
    Discarded,
    Effect,
    Left,
    Rejoined,
    Send,
)
from .group_view import GroupView
from .history import History
from .member import Member
from .message import (
    KIND_DATA,
    KIND_DECISION,
    KIND_RECOVERY_RQ,
    KIND_RECOVERY_RSP,
    KIND_REQUEST,
    DecisionMessage,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from .mid import NO_MESSAGE, Mid
from .rejoin import (
    KIND_JOIN,
    JoinRequest,
    MemberState,
    build_member,
    export_state,
    replay,
)
from .service import RequestHandle, UrcgcService
from .total_order import TotalOrderView, attach_total_order
from .waiting import WaitingList

__all__ = [
    "CausalContext",
    "ContiguousDependencyTracker",
    "FullCausalContext",
    "SetDependencyTracker",
    "validate_deps",
    "LeaveRule",
    "UrcgcConfig",
    "Decision",
    "RequestInfo",
    "compute_decision",
    "initial_decision",
    "CausalDeliverer",
    "Confirm",
    "DecisionApplied",
    "Deliver",
    "Discarded",
    "Effect",
    "Left",
    "Rejoined",
    "Send",
    "GroupView",
    "History",
    "Member",
    "KIND_DATA",
    "KIND_DECISION",
    "KIND_RECOVERY_RQ",
    "KIND_RECOVERY_RSP",
    "KIND_REQUEST",
    "DecisionMessage",
    "RecoveryRequest",
    "RecoveryResponse",
    "RequestMessage",
    "UserMessage",
    "Mid",
    "NO_MESSAGE",
    "KIND_JOIN",
    "JoinRequest",
    "MemberState",
    "build_member",
    "export_state",
    "replay",
    "RequestHandle",
    "UrcgcService",
    "TotalOrderView",
    "attach_total_order",
    "WaitingList",
]
