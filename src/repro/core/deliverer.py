"""A standalone causal delivery engine for arbitrary dependency DAGs.

The urcgc :class:`~repro.core.member.Member` uses the paper's
*intermediate* causality interpretation (one chain per origin), which
lets it track progress with per-origin counters.  This module provides
the *general* Definition 3.1 engine: a process may root several
concurrent sequences (produced with
:class:`~repro.core.causality.FullCausalContext`), so dependencies form
an arbitrary DAG and the tree-structured bookkeeping the paper
mentions ("a strict adherence to Definition 3.1 would lead to the
consideration of a tree structured history") becomes necessary.

It is transport-agnostic and reusable on its own: feed it received
messages, get back the causally ordered deliveries.
"""

from __future__ import annotations

from collections import deque

from ..errors import CausalityViolationError
from .causality import SetDependencyTracker
from .message import UserMessage
from .mid import Mid

__all__ = ["CausalDeliverer"]


class CausalDeliverer:
    """Deliver messages once their full causal cut has been delivered.

    Unlike the Member engine there is no implicit predecessor rule:
    only the *explicit* dependency list gates delivery, so two messages
    of the same origin with no declared relation are concurrent
    (multiple roots per process — full Definition 3.1).
    """

    def __init__(self) -> None:
        self._tracker = SetDependencyTracker()
        #: mid -> (message, outstanding deps)
        self._waiting: dict[Mid, tuple[UserMessage, set[Mid]]] = {}
        #: blocker mid -> waiting mids
        self._blocked_on: dict[Mid, set[Mid]] = {}
        self.delivered_count = 0
        self.duplicate_count = 0

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

    def is_delivered(self, mid: Mid) -> bool:
        return self._tracker.is_processed(mid)

    def receive(self, message: UserMessage) -> list[UserMessage]:
        """Accept ``message``; return every newly deliverable message
        (the argument included when its cut is complete), in causal
        order."""
        mid = message.mid
        if self._tracker.is_processed(mid) or mid in self._waiting:
            self.duplicate_count += 1
            return []
        missing = {
            dep for dep in message.deps if not self._tracker.is_processed(dep)
        }
        if missing:
            self._waiting[mid] = (message, missing)
            for blocker in missing:
                self._blocked_on.setdefault(blocker, set()).add(mid)
            return []
        return self._deliver_and_drain(message)

    def _deliver_and_drain(self, message: UserMessage) -> list[UserMessage]:
        out: list[UserMessage] = []
        queue: deque[UserMessage] = deque([message])
        while queue:
            current = queue.popleft()
            self._tracker.mark_processed(current.mid)
            self.delivered_count += 1
            out.append(current)
            for blocked_mid in sorted(self._blocked_on.pop(current.mid, set())):
                waiting, missing = self._waiting[blocked_mid]
                missing.discard(current.mid)
                if not missing:
                    del self._waiting[blocked_mid]
                    queue.append(waiting)
        return out

    def missing_cut(self, mid: Mid) -> set[Mid]:
        """The dependencies still blocking ``mid`` (empty if unknown or
        deliverable)."""
        entry = self._waiting.get(mid)
        return set(entry[1]) if entry else set()

    def all_missing(self) -> set[Mid]:
        """Every mid some waiting message is blocked on — the set a
        recovery layer would need to fetch."""
        return set(self._blocked_on)

    def check_acyclic(self, messages: list[UserMessage]) -> None:
        """Validate that a message set's dependency graph is a DAG
        (Definition 3.1's acyclic property).  Raises on a cycle."""
        deps = {m.mid: set(m.deps) for m in messages}
        state: dict[Mid, int] = {}

        def visit(mid: Mid, stack: list[Mid]) -> None:
            mark = state.get(mid, 0)
            if mark == 1:
                cycle = stack[stack.index(mid):] + [mid]
                raise CausalityViolationError(
                    "dependency cycle: " + " -> ".join(map(str, cycle))
                )
            if mark == 2 or mid not in deps:
                return
            state[mid] = 1
            stack.append(mid)
            for dep in deps[mid]:
                visit(dep, stack)
            stack.pop()
            state[mid] = 2

        for mid in deps:
            visit(mid, [])
