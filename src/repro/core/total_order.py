"""Total ordering on top of urcgc — the paper's sibling *urgc* service.

The paper positions urcgc next to its earlier total-order algorithm
([APR93], "urgc"): same uniform reliability, but "all the members of G
consistently decide on the same progressive order to process
messages" — the service replicated-data applications need (Section 2's
ABCAST analogy).

This layer derives that order from machinery urcgc already has.  Every
**full-group decision** fixes a *stabilization batch*: the messages its
``stable`` vector newly covers.  All members that observe the same
decision compute the identical batch, and within a batch the rank is
the deterministic ``(origin, seq)`` sort — so the concatenation of
batches is one total order, and it extends the causal order (a
dependency is always covered no later than its dependent).

Batch boundaries are only known to members that see *every* full-group
decision.  Decisions therefore carry a ``full_group_count``; a member
that skips one (receive omission swallowing a decision broadcast)
detects the jump and flags itself **desynchronized** instead of
silently releasing a differently-interleaved order — fail-notify, the
honest semantic for a total-order view without a batch-replay protocol.

The price of total order is latency: release waits for stability,
about one subrun behind urcgc's causal delivery — exactly the
ABCAST-vs-CBCAST trade the paper sketches in Section 2.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Sequence

from ..types import ProcessId, SeqNo
from .decision import Decision
from .effects import Deliver, Effect, Send
from .member import Member
from .message import UserMessage
from .mid import Mid

__all__ = ["TotalOrderView", "attach_total_order"]

TotalOrderHandler = Callable[[UserMessage], None]


class TotalOrderView:
    """Totally ordered delivery derived from one member's decisions.

    Wrap a :class:`Member` and route its effects through
    :meth:`process_effects`; the ``on_total_order`` callback then fires
    for every message, in the group-wide total order.
    """

    def __init__(
        self,
        member: Member,
        *,
        on_total_order: TotalOrderHandler | None = None,
    ) -> None:
        self.member = member
        self._on_total_order = on_total_order
        #: Causally delivered, not yet released in total order.
        self._pending: dict[Mid, UserMessage] = {}
        #: Batch frontier: stable vector of the last absorbed batch.
        self._released_stable = [0] * member.config.n
        #: Mids sequenced (batch boundaries fixed) but not yet released
        #: because their causal delivery has not happened here yet.
        #: A deque: release pops from the head every drain, and a list's
        #: ``pop(0)`` made long stability batches quadratic.
        self._release_queue: deque[Mid] = deque()
        #: mid -> position in ``ordered`` (O(1) ``order_rank``).
        self._rank: dict[Mid, int] = {}
        self._last_decision_number = -1
        self._last_full_group_count = 0
        #: True once a stabilization batch was provably missed: ranks
        #: can no longer be computed consistently.
        self.desynchronized = False
        #: The totally ordered output, in release order.
        self.ordered: list[UserMessage] = []

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def sequenced_unreleased(self) -> int:
        return len(self._release_queue)

    def process_effects(self, effects: list[Effect]) -> list[Send]:
        """Feed the member's effects; returns the Sends for the driver."""
        sends: list[Send] = []
        for effect in effects:
            if isinstance(effect, Send):
                sends.append(effect)
            elif isinstance(effect, Deliver):
                self._pending[effect.message.mid] = effect.message
        # Decision adoption happened inside the member while producing
        # these effects; observe the result.
        self._absorb_decision(self.member.latest_decision)
        self._drain()
        return sends

    # ------------------------------------------------------------------

    def _absorb_decision(self, decision: Decision) -> None:
        if (
            self.desynchronized
            or not decision.full_group
            or decision.number <= self._last_decision_number
        ):
            return
        self._last_decision_number = decision.number
        if decision.full_group_count != self._last_full_group_count + 1:
            # A stabilization batch was missed: its internal boundaries
            # are unknowable here, so ranks would diverge from the rest
            # of the group.  Fail-notify instead.
            self.desynchronized = True
            return
        self._last_full_group_count = decision.full_group_count
        batch: list[Mid] = []
        for origin in range(decision.n):
            for seq in range(
                self._released_stable[origin] + 1, decision.stable[origin] + 1
            ):
                batch.append(Mid(ProcessId(origin), SeqNo(seq)))
            self._released_stable[origin] = max(
                self._released_stable[origin], decision.stable[origin]
            )
        batch.sort(key=lambda mid: (mid.origin, mid.seq))
        self._release_queue.extend(batch)

    def _drain(self) -> None:
        while self._release_queue:
            head = self._release_queue[0]
            message = self._pending.pop(head, None)
            if message is None:
                return  # causal delivery of the head hasn't happened yet
            self._release_queue.popleft()
            self._rank[message.mid] = len(self.ordered)
            self.ordered.append(message)
            if self._on_total_order is not None:
                self._on_total_order(message)

    def order_rank(self, mid: Mid) -> int | None:
        """Position of ``mid`` in the released total order, if any."""
        return self._rank.get(mid)


def attach_total_order(
    cluster: Any, *, handlers: Sequence[TotalOrderHandler] | None = None
) -> list["TotalOrderView"]:
    """Wrap every member of a SimCluster with a :class:`TotalOrderView`,
    splicing into each service's dispatch.  Returns the views,
    index-aligned with the cluster's members.  (``cluster`` stays
    ``Any``: importing the harness here would invert the layering.)"""
    views = []
    for i, service in enumerate(cluster.services):
        handler = handlers[i] if handlers else None
        view = TotalOrderView(cluster.members[i], on_total_order=handler)
        original_dispatch = service.dispatch

        def dispatch(
            effects: list[Effect],
            view: "TotalOrderView" = view,
            original: Callable[[list[Effect]], list[Send]] = original_dispatch,
        ) -> list[Send]:
            sends = original(effects)
            view.process_effects(effects)
            return sends

        service.dispatch = dispatch  # type: ignore[method-assign]
        views.append(view)
    return views
