"""Effects emitted by the sans-IO protocol engines.

Engines never touch a socket or a clock: handlers return a list of
effects which the driver (simulator or asyncio runtime) executes.
This keeps every protocol state machine directly unit-testable and
host-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..net.addressing import Address
from .mid import Mid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .message import UserMessage

__all__ = [
    "Effect",
    "Send",
    "Deliver",
    "Confirm",
    "Left",
    "Discarded",
    "MembershipChange",
    "DecisionApplied",
    "Rejoined",
    "SuspicionChange",
]


class Effect:
    """Marker base class for engine effects."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Effect):
    """Transmit ``message`` (a wire-encodable PDU) to ``dst``."""

    dst: Address
    message: object
    kind: str


@dataclass(frozen=True)
class Deliver(Effect):
    """A user message was processed: hand it to the application.

    This is the urcgc.data.Ind primitive of the service interface.
    """

    message: "UserMessage"


@dataclass(frozen=True)
class Confirm(Effect):
    """The local entity processed the application's own message.

    This is the urcgc.data.Conf primitive: the submitting user entity
    unblocks when it arrives.
    """

    mid: Mid


@dataclass(frozen=True)
class Left(Effect):
    """The engine left the group (suicide, missed decisions, or
    exhausted recovery budget)."""

    reason: str


@dataclass(frozen=True)
class Discarded(Effect):
    """Waiting messages were destroyed by the orphan-discard rule."""

    lost: Mid
    discarded: tuple[Mid, ...]


@dataclass(frozen=True)
class DecisionApplied(Effect):
    """The engine adopted ``decision`` as its latest decision.

    Durable drivers append the decision to the write-ahead log so a
    replay after a crash adopts the exact same decision sequence.
    Drivers without persistence ignore the effect.
    """

    decision: object


@dataclass(frozen=True)
class Rejoined(Effect):
    """A previously-removed process was re-admitted by a JOIN decision.

    ``pid`` is the rejoining slot, ``boundary`` the last own-sequence
    number of its previous incarnation (new messages start above it).
    """

    pid: int
    boundary: int


@dataclass(frozen=True)
class SuspicionChange(Effect):
    """The failure detector suspected (or cleared) a peer.

    Advisory, not a membership change: removal still goes through a
    coordinator's decision.  Drivers mirror it into ``fd.*`` metrics
    and suspect spans (see docs/OBSERVABILITY.md).
    """

    pid: int
    suspected: bool
    reason: str


@dataclass(frozen=True)
class MembershipChange(Effect):
    """The local group view removed crashed/left processes.

    Emitted when applying a decision shrinks the view; ``removed``
    lists the newly-excluded pids and ``alive`` is the resulting
    membership vector.  Applications use this for the view-change
    notifications a group service conventionally provides.
    """

    removed: tuple[int, ...]
    alive: tuple[bool, ...]
