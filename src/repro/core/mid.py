"""Message identifiers.

Every urcgc message carries a *mid* that uniquely identifies it: the
generating process and the progressive order the process assigned
(Section 4: "it assigns to msg a progressive order").  Under the
paper's intermediate causality interpretation each process roots one
sequence, so ``(origin, seq)`` totally orders messages within an
origin, and ``seq`` starts at 1 (0 is the "nothing yet" sentinel used
in ``last_processed``-style vectors).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CausalityViolationError
from ..types import ProcessId, SeqNo

__all__ = ["Mid", "NO_MESSAGE"]

#: Sentinel sequence number meaning "no message of this origin yet".
NO_MESSAGE: SeqNo = SeqNo(0)


@dataclass(frozen=True, order=True)
class Mid:
    """Unique message id: ``(origin process, progressive order)``."""

    origin: ProcessId
    seq: SeqNo

    def __post_init__(self) -> None:
        if self.seq < 1:
            raise CausalityViolationError(
                f"message sequence numbers start at 1, got {self.seq}"
            )
        if self.origin < 0:
            raise CausalityViolationError(f"negative origin {self.origin}")

    @property
    def predecessor(self) -> "Mid | None":
        """The previous message of the same sequence (None for the root)."""
        if self.seq == 1:
            return None
        return Mid(self.origin, SeqNo(self.seq - 1))

    def __str__(self) -> str:
        return f"m({self.origin},{self.seq})"
