"""Control-message batching — the throughput layer's send-side half.

The urcgc wire path is one PDU per datagram.  Under bursty load that
wastes the natural batching seam the protocol already has: everything a
member emits inside one round is produced back to back and mostly goes
to the same destination.  :class:`Batcher` exploits exactly that,
without changing protocol semantics:

* A run of consecutive own-sequence :class:`~repro.core.message.UserMessage`
  broadcasts collapses into one
  :class:`~repro.core.message.GenerateBatch` — the shared external
  dependency vector is encoded once instead of per message (the
  amortization Nédelec et al. and Almeida identify as where
  causal-broadcast throughput is won).
* Whatever consecutive same-destination sends remain are wrapped into a
  :class:`~repro.net.wire.BatchFrame` envelope of length-prefixed
  sub-messages, one datagram instead of many.

Both transforms are loss-free: :func:`expand_message` at the receiver
reproduces the identical PDU sequence, in order, so a batched and an
unbatched run process the same messages everywhere (the Hypothesis
equivalence property in ``tests/properties`` pins this down).

Only the *drivers* (``harness/cluster.py``, ``runtime/node.py``) call
this module; the :class:`~repro.core.member.Member` engine stays
batching-blind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from ..errors import WireFormatError
from ..net.wire import BatchFrame, decode_message, encode_message
from .config import BatchingConfig
from .effects import Send
from .message import KIND_BATCH, KIND_DATA, GenerateBatch, UserMessage
from .mid import Mid

if TYPE_CHECKING:  # avoid a core -> obs import at runtime
    from ..obs.metrics import Registry

__all__ = ["Batcher", "expand_message"]

#: bytes_field limit for a BatchFrame sub-message / batch payload.
_MAX_SUB_BYTES = 0xFFFF
#: UserMessage dependency-count limit (u8 on the wire).
_MAX_SHARED_DEPS = 0xFF

Clock = Callable[[], float]


def _split_deps(message: UserMessage) -> tuple[Mid, ...] | None:
    """The external (non-predecessor) dependencies, or ``None`` when
    the list is not in the canonical ``(predecessor, *external)`` shape
    the batch codec can reconstruct."""
    predecessor = message.mid.predecessor
    deps = message.deps
    if predecessor is None:
        return deps
    if not deps or deps[0] != predecessor:
        return None
    return deps[1:]


class Batcher:
    """Coalesces one engine's outgoing sends into batch frames.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.BatchingConfig` knobs.
    registry:
        Optional :class:`repro.obs.Registry`; batch sizes and frame
        bytes are recorded under ``batch.*``.
    clock:
        Optional monotonic clock (seconds); when both a registry and a
        clock are supplied, per-:meth:`pack` encode latency lands in
        the ``batch.encode_seconds`` histogram.  Injected by the driver
        so this module stays free of wall-clock reads.
    """

    def __init__(
        self,
        config: BatchingConfig,
        *,
        registry: "Registry | None" = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config
        self._registry = registry
        self._clock = clock
        #: Frames emitted that coalesce >= 2 sub-messages.
        self.frames_packed = 0
        #: Original sends absorbed into those frames.
        self.messages_batched = 0

    # ------------------------------------------------------------------

    def pack(self, sends: list[Send]) -> list[Send]:
        """Rewrite ``sends`` for the wire.

        Consecutive same-destination sends are coalesced; everything
        else passes through untouched, in its original position.  The
        receiver-side inverse is :func:`expand_message`.
        """
        if len(sends) < 2:
            return sends
        started = self._clock() if self._clock is not None else None
        out: list[Send] = []
        run: list[Send] = []
        for send in sends:
            if run and send.dst == run[0].dst:
                run.append(send)
            else:
                self._flush_run(run, out)
                run = [send]
        self._flush_run(run, out)
        if started is not None and self._registry is not None:
            self._registry.observe(
                "batch.encode_seconds", self._clock() - started  # type: ignore[misc]
            )
        return out

    # ------------------------------------------------------------------

    def _flush_run(self, run: list[Send], out: list[Send]) -> None:
        if not run:
            return
        if len(run) == 1:
            out.append(run[0])
            return
        out.extend(self._envelope(self._compact_generates(run)))

    def _batchable(self, send: Send) -> bool:
        message = send.message
        return (
            send.kind == KIND_DATA
            and isinstance(message, UserMessage)
            and len(message.payload) <= _MAX_SUB_BYTES
        )

    def _compact_generates(self, run: list[Send]) -> list[Send]:
        """Collapse contiguous-sequence data subruns into GenerateBatches."""
        out: list[Send] = []
        group: list[Send] = []
        shared: tuple[Mid, ...] = ()
        flags: list[bool] = []
        total_bytes = 0

        def flush_group() -> None:
            nonlocal group, flags, total_bytes
            if len(group) < 2:
                out.extend(group)
            else:
                first = group[0].message
                assert isinstance(first, UserMessage)
                batch = GenerateBatch(
                    origin=first.mid.origin,
                    first_seq=first.mid.seq,
                    shared_deps=shared,
                    ext_flags=tuple(flags),
                    payloads=tuple(
                        send.message.payload  # type: ignore[union-attr]
                        for send in group
                    ),
                )
                out.append(Send(group[0].dst, batch, KIND_DATA))
                self.frames_packed += 1
                self.messages_batched += len(group)
                if self._registry is not None:
                    self._registry.count("batch.frames", 1, layer="generate")
                    self._registry.count("batch.messages", len(group), layer="generate")
                    self._registry.observe("batch.size", len(group), layer="generate")
            group = []
            flags = []
            total_bytes = 0

        for send in run:
            if not self._batchable(send):
                flush_group()
                out.append(send)
                continue
            message = send.message
            assert isinstance(message, UserMessage)
            ext = _split_deps(message)
            if ext is None or len(ext) > _MAX_SHARED_DEPS:
                flush_group()
                out.append(send)
                continue
            if group:
                previous = group[-1].message
                assert isinstance(previous, UserMessage)
                flag = ext == shared or (not ext and not shared)
                contiguous = (
                    message.mid.origin == previous.mid.origin
                    and message.mid.seq == previous.mid.seq + 1
                )
                fits = (
                    len(group) < self.config.max_batch
                    and total_bytes + len(message.payload) <= self.config.max_bytes
                )
                if contiguous and fits and (flag or not ext):
                    group.append(send)
                    flags.append(bool(ext))
                    total_bytes += len(message.payload)
                    continue
                flush_group()
            shared = ext
            group = [send]
            flags = [True]
            total_bytes = len(message.payload)
        flush_group()
        return out

    def _envelope(self, run: list[Send]) -> list[Send]:
        """Wrap remaining consecutive sends into BatchFrame envelopes."""
        if len(run) < 2:
            return run
        out: list[Send] = []
        chunk: list[Send] = []
        encoded: list[bytes] = []
        total_bytes = 0

        def flush_chunk() -> None:
            nonlocal chunk, encoded, total_bytes
            if len(chunk) < 2:
                out.extend(chunk)
            else:
                kinds = {send.kind for send in chunk}
                kind = kinds.pop() if len(kinds) == 1 else KIND_BATCH
                out.append(Send(chunk[0].dst, BatchFrame(tuple(encoded)), kind))
                self.frames_packed += 1
                self.messages_batched += len(chunk)
                if self._registry is not None:
                    self._registry.count("batch.frames", 1, layer="frame")
                    self._registry.count("batch.messages", len(chunk), layer="frame")
                    self._registry.observe("batch.size", len(chunk), layer="frame")
                    self._registry.observe("batch.bytes", total_bytes, layer="frame")
            chunk = []
            encoded = []
            total_bytes = 0

        for send in run:
            try:
                data = encode_message(send.message)  # type: ignore[arg-type]
            except WireFormatError:
                flush_chunk()
                out.append(send)
                continue
            if len(data) > _MAX_SUB_BYTES:
                flush_chunk()
                out.append(send)
                continue
            if chunk and (
                len(chunk) >= self.config.max_batch
                or total_bytes + len(data) > self.config.max_bytes
            ):
                flush_chunk()
            chunk.append(send)
            encoded.append(data)
            total_bytes += len(data)
        flush_chunk()
        return out


def expand_message(message: object, *, _depth: int = 0) -> Iterator[object]:
    """Receiver-side inverse of :meth:`Batcher.pack`.

    Yields the original PDU sequence of a decoded wire message: a
    :class:`BatchFrame` is opened and each sub-message decoded, a
    :class:`GenerateBatch` expands into its user messages, and any
    other message passes through as itself.
    """
    if isinstance(message, BatchFrame):
        if _depth >= 4:
            raise WireFormatError("BatchFrame nested too deep")
        for frame in message.frames:
            yield from expand_message(decode_message(frame), _depth=_depth + 1)
    elif isinstance(message, GenerateBatch):
        yield from message.expand()
    else:
        yield message
