"""Semantic bounds validation of decoded PDUs.

The wire codecs (:mod:`repro.net.wire`, :mod:`repro.core.message`)
reject *structurally* malformed bytes — bad tags, truncation, trailing
garbage — but a structurally valid PDU can still be semantically
poisonous to a group of size ``n``: a member index at or above ``n``
(indexing crashes in the view/tracker), a vector of the wrong length,
a forged dependency naming a process that does not exist.  Drivers run
:func:`validate_message` over every decoded (and batch-expanded) PDU
before dispatching it to the engine and drop offenders under the
``net.decode_error`` counter, so a corrupted or adversarial datagram
can never raise out of a receive loop (PROTOCOL §13's forged-vector
fault class).
"""

from __future__ import annotations

from .decision import Decision
from .message import (
    DecisionMessage,
    GenerateBatch,
    HeartbeatMessage,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from .mid import Mid
from .rejoin import JoinRequest

__all__ = ["validate_message"]


def _check_mid(mid: Mid, n: int) -> str | None:
    if mid.origin >= n:
        return f"mid origin {mid.origin} >= n={n}"
    return None


def _check_vector(name: str, vector: tuple, n: int) -> str | None:
    if len(vector) != n:
        return f"{name} has length {len(vector)}, expected {n}"
    return None


def _check_decision(decision: Decision, n: int) -> str | None:
    if decision.coordinator >= n:
        return f"decision coordinator {decision.coordinator} >= n={n}"
    for name, vector in (
        ("alive", decision.alive),
        ("attempts", decision.attempts),
        ("stable", decision.stable),
        ("contributors", decision.contributors),
        ("max_processed", decision.max_processed),
        ("most_updated", decision.most_updated),
        ("min_waiting", decision.min_waiting),
    ):
        problem = _check_vector(f"decision {name}", vector, n)
        if problem is not None:
            return problem
    if any(pid >= n for pid in decision.most_updated):
        return "decision most_updated names a pid >= n"
    if any(pid >= n for pid in decision.joiners):
        return "decision joiners names a pid >= n"
    # The rejoin vectors are empty (legacy wire size) or full length.
    for name, vector in (
        ("void_from", decision.void_from),
        ("join_boundary", decision.join_boundary),
    ):
        if vector and len(vector) != n:
            return f"decision {name} has length {len(vector)}, expected 0 or {n}"
    return None


def validate_message(message: object, n: int) -> str | None:
    """Reason this decoded PDU is unsafe for a group of size ``n``
    (None when it is in range).

    Unknown message types are rejected too: a datagram carrying some
    other protocol's (structurally valid) tag must not reach
    ``Member.on_message``, which raises on unexpected types.
    """
    if isinstance(message, UserMessage):
        problem = _check_mid(message.mid, n)
        if problem is not None:
            return problem
        for dep in message.deps:
            problem = _check_mid(dep, n)
            if problem is not None:
                return f"dep: {problem}"
        return None
    if isinstance(message, GenerateBatch):
        if message.origin >= n:
            return f"batch origin {message.origin} >= n={n}"
        for dep in message.shared_deps:
            problem = _check_mid(dep, n)
            if problem is not None:
                return f"shared dep: {problem}"
        return None
    if isinstance(message, RequestMessage):
        if message.sender >= n:
            return f"request sender {message.sender} >= n={n}"
        return (
            _check_vector("request last_processed", message.info.last_processed, n)
            or _check_vector("request waiting", message.info.waiting, n)
            or _check_decision(message.decision, n)
        )
    if isinstance(message, DecisionMessage):
        return _check_decision(message.decision, n)
    if isinstance(message, RecoveryRequest):
        if message.sender >= n:
            return f"recovery sender {message.sender} >= n={n}"
        if any(origin >= n for origin, _, _ in message.ranges):
            return "recovery range names an origin >= n"
        return None
    if isinstance(message, RecoveryResponse):
        if message.sender >= n:
            return f"recovery sender {message.sender} >= n={n}"
        for inner in message.messages:
            problem = validate_message(inner, n)
            if problem is not None:
                return problem
        return None
    if isinstance(message, JoinRequest):
        if message.sender >= n:
            return f"join sender {message.sender} >= n={n}"
        return _check_vector("join last_processed", message.last_processed, n)
    if isinstance(message, HeartbeatMessage):
        if message.sender >= n:
            return f"heartbeat sender {message.sender} >= n={n}"
        return None
    return f"unexpected message type {type(message).__name__}"
