"""The local group view and the rotating-coordinator rule.

"A local group view describes the knowledge that each process has
acquired about the whole system of processes" (Section 4).  In the
paper views only shrink: all view updates flow through coordinator
decisions, so every process applies the same removals — possibly at
different times, which the protocol tolerates.  This reproduction adds
one extension beyond the paper: with rejoin enabled (PROTOCOL §12) a
removed slot can be re-admitted by a JOIN decision, through the
explicit :meth:`GroupView.restore` path only — ``apply_vector`` stays
monotone so stale decisions can never resurrect a process.

The coordinator of subrun ``s`` is the process at position ``s mod n``
in the original ordering, skipping processes the local view marks
crashed (the rotation is over *active* processes).  While views agree
this is deterministic and identical everywhere.
"""

from __future__ import annotations

from ..errors import ConfigError, NotInGroupError
from ..types import ProcessId, SubrunNo

__all__ = ["GroupView"]


class GroupView:
    """Membership knowledge of one process."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigError(f"group size must be >= 1, got {n}")
        self._alive = [True] * n

    @property
    def n(self) -> int:
        """Original cardinality (including removed processes)."""
        return len(self._alive)

    def is_alive(self, pid: ProcessId) -> bool:
        self._check(pid)
        return self._alive[pid]

    def remove(self, pid: ProcessId) -> None:
        """Mark ``pid`` crashed/left (idempotent)."""
        self._check(pid)
        self._alive[pid] = False

    def restore(self, pid: ProcessId) -> None:
        """Re-admit ``pid`` (idempotent).

        Only the JOIN decision flow calls this; ordinary decision
        vectors go through :meth:`apply_vector`, which never
        resurrects.
        """
        self._check(pid)
        self._alive[pid] = True

    def alive_set(self) -> frozenset[ProcessId]:
        return frozenset(
            ProcessId(pid) for pid, alive in enumerate(self._alive) if alive
        )

    def alive_count(self) -> int:
        return sum(self._alive)

    def alive_vector(self) -> list[bool]:
        """Copy of the per-process alive flags, index = pid."""
        return list(self._alive)

    def apply_vector(self, alive: list[bool]) -> list[ProcessId]:
        """Adopt a decision's membership vector; returns newly-removed
        pids.  Membership is monotone — a decision can never resurrect
        a process this view already removed."""
        if len(alive) != len(self._alive):
            raise ConfigError(
                f"membership vector length {len(alive)} != group size {len(self._alive)}"
            )
        removed: list[ProcessId] = []
        for pid, flag in enumerate(alive):
            if not flag and self._alive[pid]:
                self._alive[pid] = False
                removed.append(ProcessId(pid))
        return removed

    def coordinator_of(self, subrun: SubrunNo) -> ProcessId:
        """Rotating coordinator: position ``subrun mod n``, skipping
        processes this view marks crashed."""
        n = len(self._alive)
        if not any(self._alive):
            raise NotInGroupError("every process has left the group")
        for offset in range(n):
            candidate = (subrun + offset) % n
            if self._alive[candidate]:
                return ProcessId(candidate)
        raise AssertionError("unreachable: alive process exists")

    def _check(self, pid: ProcessId) -> None:
        if not 0 <= pid < len(self._alive):
            raise NotInGroupError(f"pid {pid} outside group of size {len(self._alive)}")
