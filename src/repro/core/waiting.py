"""The waiting list.

A received message whose causal predecessors have not all been
processed "is temporarily entered a waiting list waiting for the
missing messages" (Section 4).  The list indexes waiting messages by
the mids they block on, so processing one message releases exactly the
messages it unblocks; it also answers the two queries the protocol
needs: the oldest waiting mid per sequence (sent to the coordinator in
requests) and transitive discard of messages depending on a lost one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import DuplicateMidError
from ..types import ProcessId, SeqNo
from .mid import Mid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .message import UserMessage

__all__ = ["WaitingList"]


class WaitingList:
    """Messages received but not yet processable, indexed by blocker."""

    def __init__(self) -> None:
        #: mid -> (message, set of mids still missing)
        self._waiting: dict[Mid, tuple["UserMessage", set[Mid]]] = {}
        #: missing mid -> set of waiting mids blocked on it
        self._blocked_on: dict[Mid, set[Mid]] = {}

    def __len__(self) -> int:
        return len(self._waiting)

    def __contains__(self, mid: Mid) -> bool:
        return mid in self._waiting

    def add(self, message: "UserMessage", missing: set[Mid]) -> None:
        """Park ``message`` until every mid in ``missing`` is processed."""
        if not missing:
            raise ValueError(f"{message.mid} has no missing deps; process it instead")
        if message.mid in self._waiting:
            raise DuplicateMidError(f"{message.mid} already waiting")
        self._waiting[message.mid] = (message, set(missing))
        for blocker in missing:
            self._blocked_on.setdefault(blocker, set()).add(message.mid)

    def get(self, mid: Mid) -> "UserMessage | None":
        entry = self._waiting.get(mid)
        return entry[0] if entry else None

    def notify_processed(self, mid: Mid) -> list["UserMessage"]:
        """Record that ``mid`` was processed; return newly-released
        messages (every dependency satisfied), in mid order."""
        blocked = self._blocked_on.pop(mid, None)
        if not blocked:
            return []
        released: list["UserMessage"] = []
        for waiting_mid in sorted(blocked):
            message, missing = self._waiting[waiting_mid]
            missing.discard(mid)
            if not missing:
                del self._waiting[waiting_mid]
                released.append(message)
        return released

    def oldest_waiting(self) -> dict[ProcessId, SeqNo]:
        """Oldest waiting seq per origin (the request's ``waiting`` field)."""
        oldest: dict[ProcessId, SeqNo] = {}
        for mid in self._waiting:
            current = oldest.get(mid.origin)
            if current is None or mid.seq < current:
                oldest[mid.origin] = mid.seq
        return oldest

    def missing_for(self, mid: Mid) -> set[Mid]:
        """The mids ``mid`` is still blocked on (empty if not waiting)."""
        entry = self._waiting.get(mid)
        return set(entry[1]) if entry else set()

    def all_missing(self) -> set[Mid]:
        """Every mid some waiting message is blocked on."""
        return set(self._blocked_on)

    def discard_dependent(self, lost: Mid) -> list[Mid]:
        """Drop every waiting message that transitively depends on
        ``lost`` (the orphan-discard rule) and return their mids.

        A waiting message depends on ``lost`` if ``lost`` is among its
        missing mids, if it belongs to the same origin with a later
        seq (sequence contiguity), or if it depends on another
        discarded message.
        """
        discarded: list[Mid] = []
        frontier = {lost}
        while frontier:
            target = frontier.pop()
            victims = set()
            for waiting_mid, (message, missing) in self._waiting.items():
                if target in missing or target in message.deps:
                    victims.add(waiting_mid)
                elif waiting_mid.origin == target.origin and waiting_mid.seq > target.seq:
                    victims.add(waiting_mid)
            for victim in victims:
                self._remove(victim)
                discarded.append(victim)
                frontier.add(victim)
        return sorted(discarded)

    def _remove(self, mid: Mid) -> None:
        _, missing = self._waiting.pop(mid)
        for blocker in missing:
            parked = self._blocked_on.get(blocker)
            if parked is not None:
                parked.discard(mid)
                if not parked:
                    del self._blocked_on[blocker]

    def messages(self) -> list["UserMessage"]:
        """All waiting messages, in mid order."""
        return [self._waiting[m][0] for m in sorted(self._waiting)]
