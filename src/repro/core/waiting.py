"""The waiting list.

A received message whose causal predecessors have not all been
processed "is temporarily entered a waiting list waiting for the
missing messages" (Section 4).  The list indexes waiting messages by
the mids they block on, so processing one message releases exactly the
messages it unblocks; it also answers the two queries the protocol
needs: the oldest waiting mid per sequence (sent to the coordinator in
requests) and transitive discard of messages depending on a lost one.

Both queries are index-backed rather than scans: a discard cascade
after a loss declaration touches only the actual dependents (via the
missing-mid index, a full-dependency index and a per-origin ordered
index), not the whole list — under heavy loss the naive scan is
quadratic in the waiting population and dominated recovery time.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import TYPE_CHECKING

from ..errors import DuplicateMidError
from ..types import ProcessId, SeqNo
from .mid import Mid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .message import UserMessage

__all__ = ["WaitingList"]


class WaitingList:
    """Messages received but not yet processable, indexed by blocker."""

    def __init__(self) -> None:
        #: mid -> (message, set of mids still missing)
        self._waiting: dict[Mid, tuple["UserMessage", set[Mid]]] = {}
        #: missing mid -> set of waiting mids blocked on it
        self._blocked_on: dict[Mid, set[Mid]] = {}
        #: declared dependency -> set of waiting mids naming it in
        #: ``deps`` (a superset of :attr:`_blocked_on`'s edges: a dep
        #: may already be processed yet still matter to the discard
        #: rule, because atomicity destroys dependents of a lost
        #: message even when the dependency itself was satisfied here).
        self._by_dep: dict[Mid, set[Mid]] = {}
        #: origin -> waiting mids of that origin in seq order (mids of
        #: one origin order by seq), for the same-origin-later-seq arm
        #: of the discard rule and the oldest-waiting query.
        self._by_origin: dict[ProcessId, list[Mid]] = {}

    def __len__(self) -> int:
        return len(self._waiting)

    def __contains__(self, mid: Mid) -> bool:
        return mid in self._waiting

    def add(self, message: "UserMessage", missing: set[Mid]) -> None:
        """Park ``message`` until every mid in ``missing`` is processed."""
        if not missing:
            raise ValueError(f"{message.mid} has no missing deps; process it instead")
        if message.mid in self._waiting:
            raise DuplicateMidError(f"{message.mid} already waiting")
        self._waiting[message.mid] = (message, set(missing))
        for blocker in missing:
            self._blocked_on.setdefault(blocker, set()).add(message.mid)
        for dep in message.deps:
            self._by_dep.setdefault(dep, set()).add(message.mid)
        insort(self._by_origin.setdefault(message.mid.origin, []), message.mid)

    def get(self, mid: Mid) -> "UserMessage | None":
        entry = self._waiting.get(mid)
        return entry[0] if entry else None

    def notify_processed(self, mid: Mid) -> list["UserMessage"]:
        """Record that ``mid`` was processed; return newly-released
        messages (every dependency satisfied), in mid order."""
        blocked = self._blocked_on.pop(mid, None)
        if not blocked:
            return []
        released: list["UserMessage"] = []
        for waiting_mid in sorted(blocked):
            message, missing = self._waiting[waiting_mid]
            missing.discard(mid)
            if not missing:
                self._detach(waiting_mid)
                released.append(message)
        return released

    def oldest_waiting(self) -> dict[ProcessId, SeqNo]:
        """Oldest waiting seq per origin (the request's ``waiting`` field)."""
        return {origin: mids[0].seq for origin, mids in self._by_origin.items()}

    def missing_for(self, mid: Mid) -> set[Mid]:
        """The mids ``mid`` is still blocked on (empty if not waiting)."""
        entry = self._waiting.get(mid)
        return set(entry[1]) if entry else set()

    def all_missing(self) -> set[Mid]:
        """Every mid some waiting message is blocked on."""
        return set(self._blocked_on)

    def discard_dependent(self, lost: Mid) -> list[Mid]:
        """Drop every waiting message that transitively depends on
        ``lost`` (the orphan-discard rule) and return their mids.

        A waiting message depends on ``lost`` if ``lost`` is among its
        missing mids or declared deps, if it belongs to the same origin
        with a later seq (sequence contiguity), or if it depends on
        another discarded message.  Each cascade step reads the victims
        straight off the indexes, so the cost is proportional to the
        dependency edges actually discarded.
        """
        discarded: list[Mid] = []
        frontier = {lost}
        while frontier:
            target = frontier.pop()
            victims = set(self._blocked_on.get(target, ()))
            victims |= self._by_dep.get(target, set())
            same_origin = self._by_origin.get(target.origin)
            if same_origin:
                victims.update(same_origin[bisect_right(same_origin, target):])
            for victim in victims:
                if victim in self._waiting:
                    self._detach(victim)
                    discarded.append(victim)
                    frontier.add(victim)
        return sorted(discarded)

    def _detach(self, mid: Mid) -> None:
        """Remove one waiting entry and unwind every index edge."""
        message, missing = self._waiting.pop(mid)
        for blocker in missing:
            parked = self._blocked_on.get(blocker)
            if parked is not None:
                parked.discard(mid)
                if not parked:
                    del self._blocked_on[blocker]
        for dep in message.deps:
            named = self._by_dep.get(dep)
            if named is not None:
                named.discard(mid)
                if not named:
                    del self._by_dep[dep]
        same_origin = self._by_origin[mid.origin]
        del same_origin[bisect_left(same_origin, mid)]
        if not same_origin:
            del self._by_origin[mid.origin]

    def messages(self) -> list["UserMessage"]:
        """All waiting messages, in mid order."""
        return [self._waiting[m][0] for m in sorted(self._waiting)]
