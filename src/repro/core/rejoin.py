"""Crash recovery and rejoin (PROTOCOL §12).

The paper's membership only shrinks; this module implements the
reproduction's extension for nodes that come back.  A recovering
process:

1. rebuilds its :class:`~repro.core.member.Member` from the latest
   snapshot (:func:`build_member`) and re-applies the write-ahead-log
   suffix (:func:`replay`) — both fully deterministic, so the restored
   engine is byte-for-byte the pre-crash engine;
2. enters *rejoin mode* (:meth:`Member.begin_rejoin`): it broadcasts a
   :class:`JoinRequest` every subrun instead of REQUESTs, and adopts
   circulated decisions without the suicide / leave-rule reflexes that
   would otherwise kill a process the group currently marks crashed;
3. is re-admitted when a coordinator folds it into a decision
   (``Decision.joiners``), which simultaneously closes the orphan-void
   range of its previous incarnation (``void_from``/``join_boundary``)
   so the new incarnation's messages are causally reachable;
4. catches up missed messages through the ordinary recovery machinery
   (``History.fetch_range`` state transfer from ``most_updated``),
   which works because members pin their history floors while a join
   is outstanding.

The byte-level snapshot/WAL formats live in :mod:`repro.storage`; this
module owns the protocol-facing pieces so ``core`` never imports
``storage``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..net.wire import Reader, Writer, global_registry
from ..types import ProcessId, SeqNo
from .decision import Decision
from .effects import Deliver, Effect
from .message import DecisionMessage, UserMessage
from .mid import NO_MESSAGE, Mid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .config import UrcgcConfig
    from .member import Member

__all__ = [
    "KIND_JOIN",
    "JoinRequest",
    "IncarnationFence",
    "MemberState",
    "RECORD_GENERATED",
    "RECORD_PROCESSED",
    "RECORD_DECISION",
    "export_state",
    "build_member",
    "replay",
]

#: Packet-kind label for traffic accounting.
KIND_JOIN = "ctrl-join"

_TAG_JOIN = 15

#: Write-ahead-log record kinds (the byte framing is in storage/wal.py).
RECORD_GENERATED = 1  #: an own message, logged before it is sent
RECORD_PROCESSED = 2  #: a peer message, logged when it is processed
RECORD_DECISION = 3  #: a decision, logged when it is adopted


@dataclass(frozen=True)
class JoinRequest:
    """Broadcast by a recovering incarnation until it is re-admitted.

    ``last_processed`` is the restored processing frontier; members pin
    their history floors at it so the joiner's state transfer cannot be
    outrun by compaction, and ``last_processed[sender]`` is the
    boundary seq below which the previous incarnation's sequence is
    closed.
    """

    sender: ProcessId
    incarnation: int
    last_processed: tuple[SeqNo, ...]

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        writer.u32(self.incarnation)
        writer.u32_list(self.last_processed)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "JoinRequest":
        sender = ProcessId(reader.u16())
        incarnation = reader.u32()
        last_processed = tuple(SeqNo(v) for v in reader.u32_list())
        return cls(sender, incarnation, last_processed)


global_registry.register(_TAG_JOIN, JoinRequest, JoinRequest.decode_fields)


class IncarnationFence:
    """Per-slot floor of *admitted* incarnations (PROTOCOL §13).

    Mids are incarnation-blind, so a replayed JoinRequest from an
    incarnation the group already admitted — a "zombie rejoin" — would
    re-pin every member's history and could be folded into a fresh
    decision for a slot that is alive and well.  The fence drops it:
    each member records, *at admission time*, the incarnation a slot
    was admitted with (or bumps the floor by one when the admission
    arrived via a decision without the JoinRequest detail), and any
    later JoinRequest at or below that floor is stale.

    Recording at admission — not at JoinRequest receipt — is what lets
    a genuine joiner rebroadcast its request every subrun until a
    coordinator picks it up.
    """

    __slots__ = ("_admitted",)

    def __init__(self) -> None:
        self._admitted: dict[ProcessId, int] = {}

    def floor(self, pid: ProcessId) -> int:
        """Highest incarnation of ``pid`` known admitted (0 = original
        incarnation only)."""
        return self._admitted.get(pid, 0)

    def is_stale(self, pid: ProcessId, incarnation: int) -> bool:
        """Is a JoinRequest at ``incarnation`` a zombie replay?"""
        return incarnation <= self.floor(pid)

    def admit(self, pid: ProcessId, incarnation: int | None = None) -> None:
        """Record an admission.  ``incarnation=None`` means the slot
        was restored by a decision whose JoinRequest this member never
        saw; incarnations advance by one per rejoin, so the floor bumps
        by one."""
        current = self.floor(pid)
        if incarnation is None:
            self._admitted[pid] = current + 1
        elif incarnation > current:
            self._admitted[pid] = incarnation


@dataclass
class MemberState:
    """The durable (snapshot-worthy) portion of a Member's GMT state.

    Everything else — waiting list, outbox, request stash, recovery
    counters — is either in-flight state the crash legitimately loses
    or is reconstructed by WAL replay.  The delivered log is carried
    separately (it doubles as the history source).
    """

    pid: ProcessId
    incarnation: int
    own_last: SeqNo
    alive: tuple[bool, ...]
    latest_decision: Decision
    tracker_last: dict[ProcessId, SeqNo] = field(default_factory=dict)
    tracker_gaps: dict[ProcessId, tuple[tuple[SeqNo, SeqNo], ...]] = field(
        default_factory=dict
    )
    floors: dict[ProcessId, SeqNo] = field(default_factory=dict)
    open_marks: dict[ProcessId, SeqNo] = field(default_factory=dict)
    void_ranges: dict[ProcessId, tuple[tuple[SeqNo, SeqNo], ...]] = field(
        default_factory=dict
    )


def export_state(member: "Member") -> MemberState:
    """Extract the durable state of ``member`` for a snapshot."""
    n = member.config.n
    return MemberState(
        pid=member.pid,
        incarnation=member.incarnation,
        own_last=member.context.own_last_seq,
        alive=tuple(member.view.alive_vector()),
        latest_decision=member.latest_decision,
        tracker_last={
            ProcessId(k): member.tracker.raw_last(ProcessId(k))
            for k in range(n)
            if member.tracker.raw_last(ProcessId(k)) > NO_MESSAGE
        },
        tracker_gaps=member.tracker.gaps(),
        floors={
            ProcessId(k): member.history.floor(ProcessId(k))
            for k in range(n)
            if member.history.floor(ProcessId(k)) > NO_MESSAGE
        },
        open_marks=dict(member._discarded_from),
        void_ranges={
            origin: tuple(ranges)
            for origin, ranges in member._void_ranges.items()
            if ranges
        },
    )


def build_member(
    pid: ProcessId,
    config: "UrcgcConfig",
    state: MemberState,
    delivered: Iterable[UserMessage],
) -> "Member":
    """Reconstruct a Member from snapshot ``state`` + its delivered log.

    The history is rebuilt from the delivered messages above each
    origin's cleaning floor (the snapshot stores the log once, not the
    log *and* the history).  The caller replays the WAL suffix on the
    result with :func:`replay`.
    """
    from .member import Member

    member = Member(pid, config)
    member.incarnation = state.incarnation
    member.latest_decision = state.latest_decision
    member._decision_seen_for = state.latest_decision.number
    for k, flag in enumerate(state.alive):
        if not flag and ProcessId(k) != pid:
            member.view.remove(ProcessId(k))
    member.tracker.restore(dict(state.tracker_last), dict(state.tracker_gaps))
    member.context.restore_own_seq(state.own_last)
    for origin, last in state.tracker_last.items():
        if origin != pid and last > NO_MESSAGE:
            member.context.note_processed(Mid(origin, last))
    for origin, floor in state.floors.items():
        member.history.restore_floor(origin, floor)
    member._discarded_from = dict(state.open_marks)
    member._void_ranges = {
        origin: list(ranges) for origin, ranges in state.void_ranges.items()
    }
    for origin, ranges in state.void_ranges.items():
        for first, last in ranges:
            member.tracker.add_gap(origin, first, last)
    count = 0
    for message in delivered:
        count += 1
        origin = message.mid.origin
        if message.mid.seq > member.history.floor(origin) and not member.history.contains(
            message.mid
        ):
            member.history.store(message)
        if origin == pid:
            member.generated_count += 1
    member.processed_count = count
    return member


def replay(
    member: "Member", records: Iterable[tuple[int, object]]
) -> list[UserMessage]:
    """Re-apply a WAL suffix to a freshly-restored ``member``.

    ``records`` yields ``(kind, pdu)`` pairs in log order.  All effects
    are discarded except deliveries, which are returned so the driver
    can extend its delivery log — replay must never re-send anything.
    The WAL logs messages at *processing* time (and own messages before
    sending, i.e. at generation = processing time), so replay processes
    each record immediately and deterministically.
    """
    delivered: list[UserMessage] = []

    def absorb(effects: list[Effect]) -> None:
        delivered.extend(
            effect.message for effect in effects if isinstance(effect, Deliver)
        )

    for kind, pdu in records:
        if member.has_left:
            break
        if kind == RECORD_GENERATED:
            assert isinstance(pdu, UserMessage)
            absorb(member.replay_generated(pdu))
        elif kind == RECORD_PROCESSED:
            assert isinstance(pdu, UserMessage)
            absorb(member.on_message(pdu))
        elif kind == RECORD_DECISION:
            decision = pdu.decision if isinstance(pdu, DecisionMessage) else pdu
            assert isinstance(decision, Decision)
            absorb(member.on_message(DecisionMessage(decision)))
        else:
            raise ValueError(f"unknown WAL record kind {kind}")
    return delivered
