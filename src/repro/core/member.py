"""The urcgc member engine — one process of the group.

This is the paper's Section 4 algorithm as a sans-IO state machine.
The driver calls :meth:`Member.on_round` at every round boundary and
:meth:`Member.on_message` for every received PDU; both return effects
(:mod:`repro.core.effects`) the driver executes.

Per subrun ``s`` (rounds ``2s`` and ``2s+1``):

* **First round** — if the application queued a payload and flow
  control permits, allocate the next mid, fill the dependency list,
  broadcast the :class:`~repro.core.message.UserMessage` to the group
  and process it locally.  Then send the coordinator a
  :class:`~repro.core.message.RequestMessage` with ``last_processed``,
  the oldest waiting mid per sequence, and the latest received
  decision (decision circulation).
* **Second round** — the subrun's coordinator folds the requests that
  arrived (plus its own state) into a new decision via
  :func:`~repro.core.decision.compute_decision` and broadcasts it.

Applying a decision drives every embedded fault-handling mechanism:
membership updates and suicide, history cleaning (only on
``full_group`` decisions), orphan-sequence discard, recovery requests
to the ``most_updated`` process, the ``R``-attempt recovery budget,
and the leave-on-missed-decisions rule.
"""

from __future__ import annotations

from collections import deque

from ..errors import MemberLeftError, NotInGroupError
from ..net.addressing import BROADCAST_GROUP, GroupAddress, UnicastAddress
from ..types import ProcessId, SeqNo, SubrunNo
from .causality import CausalContext, ContiguousDependencyTracker
from .config import LeaveRule, UrcgcConfig
from .decision import Decision, RequestInfo, compute_decision, initial_decision
from .effects import (
    Confirm,
    Deliver,
    Discarded,
    Effect,
    Left,
    MembershipChange,
    Send,
)
from .group_view import GroupView
from .history import History
from .message import (
    KIND_DATA,
    KIND_DECISION,
    KIND_RECOVERY_RQ,
    KIND_RECOVERY_RSP,
    KIND_REQUEST,
    DecisionMessage,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from .mid import Mid, NO_MESSAGE
from .waiting import WaitingList

__all__ = ["Member"]


class Member:
    """One urcgc protocol engine.

    Parameters
    ----------
    pid:
        This process's id, ``0 <= pid < config.n``.
    config:
        Group-wide parameter set (identical at every member).
    group:
        Multicast address of the peer group.
    """

    def __init__(
        self,
        pid: ProcessId,
        config: UrcgcConfig,
        *,
        group: GroupAddress = BROADCAST_GROUP,
    ) -> None:
        if not 0 <= pid < config.n:
            raise NotInGroupError(f"pid {pid} outside group of size {config.n}")
        self.pid = pid
        self.config = config
        self.group = group
        self.view = GroupView(config.n)
        self.context = CausalContext(pid, auto_significant=config.auto_significant)
        self.tracker = ContiguousDependencyTracker()
        self.history = History(max_length=config.max_history)
        self.waiting = WaitingList()
        self.latest_decision: Decision = initial_decision(config.n)

        self._outbox: deque[bytes] = deque()
        self._subrun: SubrunNo = SubrunNo(0)
        self._requests: dict[ProcessId, RequestInfo] = {}
        self._requests_subrun: SubrunNo = SubrunNo(-1)
        self._left_reason: str | None = None

        # Leave-rule state.
        self._strict_misses = 0
        self._decision_seen_for: SubrunNo = SubrunNo(-1)

        # Recovery state: per-origin attempt counters and the
        # last_processed value observed when the last attempt was made.
        self._recovery_attempts: dict[ProcessId, int] = {}
        self._recovery_baseline: dict[ProcessId, SeqNo] = {}

        # Orphan-discard marks: origin -> first discarded seq.
        self._discarded_from: dict[ProcessId, SeqNo] = {}

        # Introspection counters (read by the harness and tests).
        self.generated_count = 0
        self.processed_count = 0
        self.duplicate_count = 0
        self.flow_blocked_rounds = 0
        self.forked_decisions_rejected = 0
        self.full_group_decisions_seen = 0

    # ------------------------------------------------------------------
    # public state
    # ------------------------------------------------------------------

    @property
    def has_left(self) -> bool:
        return self._left_reason is not None

    @property
    def left_reason(self) -> str | None:
        return self._left_reason

    @property
    def history_length(self) -> int:
        return len(self.history)

    @property
    def waiting_length(self) -> int:
        return len(self.waiting)

    @property
    def pending_submissions(self) -> int:
        return len(self._outbox)

    def last_processed_vector(self) -> tuple[SeqNo, ...]:
        """``last_processed[j]`` for every ``j`` (Section 4's request field)."""
        return tuple(
            self.tracker.last_processed(ProcessId(k)) for k in range(self.config.n)
        )

    # ------------------------------------------------------------------
    # application interface (used by the service layer)
    # ------------------------------------------------------------------

    def submit(self, payload: bytes) -> None:
        """Queue a payload; it is broadcast at the next permitted round.

        One message is generated per round (the paper's maximum service
        rate); extra submissions queue behind it.
        """
        if self.has_left:
            raise MemberLeftError(f"p{self.pid} left the group: {self._left_reason}")
        self._outbox.append(payload)

    def mark_significant(self, origin: ProcessId) -> None:
        """Declare a causal dependency on ``origin``'s latest processed
        message for this process's next generated message."""
        self.context.mark_significant(origin)

    # ------------------------------------------------------------------
    # driver interface
    # ------------------------------------------------------------------

    def on_round(self, round_no: int) -> list[Effect]:
        """Handle a round boundary; returns the effects to execute."""
        if self.has_left:
            return []
        effects: list[Effect] = []
        subrun = SubrunNo(round_no // 2)
        self._subrun = subrun
        if round_no % 2 == 0:
            self._first_round(subrun, effects)
        else:
            self._second_round(subrun, effects)
        return effects

    def on_message(self, message: object) -> list[Effect]:
        """Handle a received PDU; returns the effects to execute."""
        if self.has_left:
            return []
        effects: list[Effect] = []
        if isinstance(message, UserMessage):
            self._handle_user_message(message, effects)
        elif isinstance(message, RequestMessage):
            self._handle_request(message, effects)
        elif isinstance(message, DecisionMessage):
            self._apply_decision(message.decision, effects)
        elif isinstance(message, RecoveryRequest):
            self._handle_recovery_request(message, effects)
        elif isinstance(message, RecoveryResponse):
            for user_message in message.messages:
                if self.has_left:
                    break
                self._handle_user_message(user_message, effects)
        else:
            raise TypeError(f"unexpected message type {type(message).__name__}")
        return effects

    # ------------------------------------------------------------------
    # round handlers
    # ------------------------------------------------------------------

    def _first_round(self, subrun: SubrunNo, effects: list[Effect]) -> None:
        self._account_missed_decision(subrun, effects)
        if self.has_left:
            return
        self._maybe_generate(effects)
        coordinator = self.view.coordinator_of(subrun)
        info = RequestInfo(self.last_processed_vector(), self._waiting_vector())
        if coordinator == self.pid:
            # The coordinator's own state counts as a request; no
            # network traffic for it (Table 1: 2(n-1) control messages).
            self._stash_request(subrun, self.pid, info)
        else:
            # Decision circulation: forward the most recent decision so
            # the next coordinator can continue the chain.  The
            # ablation variant ships the initial decision instead,
            # which carries no knowledge.
            circulated = (
                self.latest_decision
                if self.config.circulate_decisions
                else initial_decision(self.config.n)
            )
            request = RequestMessage(self.pid, subrun, info, circulated)
            effects.append(Send(UnicastAddress(coordinator), request, KIND_REQUEST))

    def _second_round(self, subrun: SubrunNo, effects: list[Effect]) -> None:
        if self.view.coordinator_of(subrun) != self.pid:
            return
        if self._requests_subrun != subrun:
            self._requests = {}
        decision = compute_decision(
            subrun, self.pid, self.latest_decision, self._requests, self.config.K
        )
        self._requests = {}
        effects.append(Send(self.group, DecisionMessage(decision), KIND_DECISION))
        self._apply_decision(decision, effects)

    def _maybe_generate(self, effects: list[Effect]) -> None:
        if not self._outbox:
            return
        if (
            self.config.flow_control_enabled
            and len(self.history) >= self.config.effective_flow_threshold
        ):
            # Distributed flow control (Section 6): refrain from
            # generating until the history drains below the threshold.
            self.flow_blocked_rounds += 1
            return
        payload = self._outbox.popleft()
        mid, deps = self.context.next_message()
        message = UserMessage(mid, deps, payload)
        self.generated_count += 1
        effects.append(Send(self.group, message, KIND_DATA))
        self._process(message, effects)
        effects.append(Confirm(mid))

    # ------------------------------------------------------------------
    # message processing (GMT sublayer: process / wait / history)
    # ------------------------------------------------------------------

    def _handle_user_message(self, message: UserMessage, effects: list[Effect]) -> None:
        mid = message.mid
        if self._is_discarded(mid) or any(self._is_discarded(d) for d in message.deps):
            return
        if self.tracker.is_processed(mid) or mid in self.waiting:
            self.duplicate_count += 1
            return
        missing = {dep for dep in message.deps if not self.tracker.is_processed(dep)}
        predecessor = mid.predecessor
        if predecessor is not None and not self.tracker.is_processed(predecessor):
            # Sequence contiguity is an implicit dependency even if the
            # sender omitted it from the explicit list.
            missing.add(predecessor)
        if missing:
            self.waiting.add(message, missing)
        else:
            self._process(message, effects)

    def _process(self, message: UserMessage, effects: list[Effect]) -> None:
        """Process a message whose causal cut is complete, then drain
        every waiting message this releases (in causal order)."""
        queue = deque([message])
        while queue:
            current = queue.popleft()
            self.tracker.mark_processed(current.mid)
            self.context.note_processed(current.mid)
            self.history.store(current)
            self.processed_count += 1
            # Progress on this origin resets its recovery budget.
            self._recovery_attempts.pop(current.mid.origin, None)
            self._recovery_baseline.pop(current.mid.origin, None)
            effects.append(Deliver(current))
            queue.extend(self.waiting.notify_processed(current.mid))

    def _is_discarded(self, mid: Mid) -> bool:
        mark = self._discarded_from.get(mid.origin)
        return mark is not None and mid.seq >= mark

    def _waiting_vector(self) -> tuple[SeqNo, ...]:
        oldest = self.waiting.oldest_waiting()
        return tuple(
            oldest.get(ProcessId(k), NO_MESSAGE) for k in range(self.config.n)
        )

    # ------------------------------------------------------------------
    # coordination (GC sublayer: requests and decisions)
    # ------------------------------------------------------------------

    def _stash_request(
        self, subrun: SubrunNo, sender: ProcessId, info: RequestInfo
    ) -> None:
        if self._requests_subrun != subrun:
            self._requests = {}
            self._requests_subrun = subrun
        self._requests[sender] = info

    def _handle_request(self, request: RequestMessage, effects: list[Effect]) -> None:
        # Adopt a newer circulated decision regardless of whether we
        # are the coordinator the sender believes in.
        self._apply_decision(request.decision, effects)
        if self.has_left:
            return
        if self.view.coordinator_of(request.subrun) != self.pid:
            return
        if request.subrun < self._subrun:
            return  # stale request from a past subrun
        self._stash_request(request.subrun, request.sender, request.info)

    def _apply_decision(self, decision: Decision, effects: list[Effect]) -> None:
        if not decision.is_newer_than(self.latest_decision):
            return
        if decision.chain <= self.latest_decision.chain:
            # A later-numbered decision with a shorter (or equal) chain
            # did not descend from the decision we already hold: its
            # coordinator was cut off from the circulation (e.g. a
            # totally receive-omitting process).  The paper's
            # consistency argument ("coordinator c knows the decision
            # of coordinator c-1") only covers decisions extending the
            # chain, so a forked decision is discarded.
            self.forked_decisions_rejected += 1
            return
        chain_gap = decision.chain - self.latest_decision.chain - 1
        if (
            self.config.leave_rule is LeaveRule.CONFIRMED
            and chain_gap >= self.config.K
        ):
            # We provably failed to receive from K consecutive
            # (decision-producing) coordinators.
            self._leave(f"missed {chain_gap} consecutive decisions", effects)
            return
        self.latest_decision = decision
        self._decision_seen_for = max(self._decision_seen_for, decision.number)
        self._strict_misses = 0

        removed = self.view.apply_vector(list(decision.alive))
        if removed:
            effects.append(
                MembershipChange(
                    tuple(int(pid) for pid in removed),
                    tuple(self.view.alive_vector()),
                )
            )
        if not self.view.is_alive(self.pid):
            # "When an alive process notices it is supposed dead, it
            # commits suicide."
            self._leave("suicide: presumed crashed by the group", effects)
            return

        if decision.full_group:
            self.full_group_decisions_seen += 1
            self.history.clean_vector(
                {
                    ProcessId(k): decision.stable[k]
                    for k in range(decision.n)
                }
            )
            self._orphan_discard(decision, effects)
        self._plan_recovery(decision, effects)

    def _orphan_discard(self, decision: Decision, effects: list[Effect]) -> None:
        """Destroy waiting messages whose causal predecessor is lost.

        Fires only on full-group decisions, where ``max_processed`` is
        exact over the active group: if the oldest waiting message of a
        *crashed* origin leaves a gap above ``max_processed``, every
        holder of the gap message crashed and the tail of the sequence
        is unrecoverable.
        """
        for k in range(decision.n):
            if decision.alive[k]:
                continue
            origin = ProcessId(k)
            min_waiting = decision.min_waiting[k]
            max_processed = decision.max_processed[k]
            if min_waiting == NO_MESSAGE or min_waiting <= max_processed + 1:
                continue
            lost = Mid(origin, SeqNo(max_processed + 1))
            mark = SeqNo(max_processed + 1)
            current = self._discarded_from.get(origin)
            if current is not None and current <= mark:
                continue
            self._discarded_from[origin] = mark
            discarded = self.waiting.discard_dependent(lost)
            effects.append(Discarded(lost, tuple(discarded)))

    def _plan_recovery(self, decision: Decision, effects: list[Effect]) -> None:
        """Ask the most-updated process for the messages we miss."""
        ranges_by_holder: dict[ProcessId, list[tuple[ProcessId, SeqNo, SeqNo]]] = {}
        for k in range(decision.n):
            origin = ProcessId(k)
            mine = self.tracker.last_processed(origin)
            target = decision.max_processed[k]
            discarded = self._discarded_from.get(origin)
            if discarded is not None:
                target = min(target, SeqNo(discarded - 1))
            if target <= mine:
                continue
            holder = decision.most_updated[k]
            if holder == self.pid or not self.view.is_alive(holder):
                continue
            baseline = self._recovery_baseline.get(origin)
            if baseline is not None and baseline >= mine:
                # No progress since the previous attempt.
                attempts = self._recovery_attempts.get(origin, 0) + 1
            else:
                attempts = 1
            self._recovery_attempts[origin] = attempts
            self._recovery_baseline[origin] = mine
            if attempts > self.config.recovery_budget:
                self._leave(
                    f"recovery of origin {origin} exhausted after {attempts - 1} attempts",
                    effects,
                )
                return
            first = SeqNo(mine + 1)
            ranges_by_holder.setdefault(holder, []).append((origin, first, target))
        for holder, ranges in sorted(ranges_by_holder.items()):
            request = RecoveryRequest(self.pid, tuple(ranges))
            effects.append(Send(UnicastAddress(holder), request, KIND_RECOVERY_RQ))

    def _handle_recovery_request(
        self, request: RecoveryRequest, effects: list[Effect]
    ) -> None:
        messages: list[UserMessage] = []
        for origin, first, last in request.ranges:
            messages.extend(self.history.fetch_range(origin, first, last))
        response = RecoveryResponse(self.pid, tuple(messages))
        effects.append(Send(UnicastAddress(request.sender), response, KIND_RECOVERY_RSP))

    # ------------------------------------------------------------------
    # leave rules
    # ------------------------------------------------------------------

    def _account_missed_decision(self, subrun: SubrunNo, effects: list[Effect]) -> None:
        """At the start of subrun ``s`` check whether subrun ``s-1``
        produced a decision we received (STRICT rule only)."""
        if self.config.leave_rule is not LeaveRule.STRICT or subrun == 0:
            return
        previous = SubrunNo(subrun - 1)
        if self._decision_seen_for >= previous:
            return
        try:
            coordinator = self.view.coordinator_of(previous)
        except NotInGroupError:
            return
        if not self.view.is_alive(coordinator):
            return  # excused: the local view already knows it crashed
        self._strict_misses += 1
        if self._strict_misses >= self.config.K:
            self._leave(
                f"missed decisions from {self._strict_misses} consecutive coordinators",
                effects,
            )

    def _leave(self, reason: str, effects: list[Effect]) -> None:
        if self.has_left:
            return
        self._left_reason = reason
        self.view.remove(self.pid)
        effects.append(Left(reason))
