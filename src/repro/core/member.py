"""The urcgc member engine — one process of the group.

This is the paper's Section 4 algorithm as a sans-IO state machine.
The driver calls :meth:`Member.on_round` at every round boundary and
:meth:`Member.on_message` for every received PDU; both return effects
(:mod:`repro.core.effects`) the driver executes.

Per subrun ``s`` (rounds ``2s`` and ``2s+1``):

* **First round** — if the application queued a payload and flow
  control permits, allocate the next mid, fill the dependency list,
  broadcast the :class:`~repro.core.message.UserMessage` to the group
  and process it locally.  Then send the coordinator a
  :class:`~repro.core.message.RequestMessage` with ``last_processed``,
  the oldest waiting mid per sequence, and the latest received
  decision (decision circulation).
* **Second round** — the subrun's coordinator folds the requests that
  arrived (plus its own state) into a new decision via
  :func:`~repro.core.decision.compute_decision` and broadcasts it.

Applying a decision drives every embedded fault-handling mechanism:
membership updates and suicide, history cleaning (only on
``full_group`` decisions), orphan-sequence discard, recovery requests
to the ``most_updated`` process, the ``R``-attempt recovery budget,
and the leave-on-missed-decisions rule.

With ``config.enable_rejoin`` (PROTOCOL §12) a crashed-and-restored
member additionally supports *rejoin mode*: it circulates
:class:`~repro.core.rejoin.JoinRequest` PDUs until a coordinator
re-admits it through ``Decision.joiners``, closing the orphan-void
range of its previous incarnation and pinning peer histories so the
state transfer it needs cannot be compacted away.
"""

from __future__ import annotations

from collections import deque

from ..detect import make_detector
from ..errors import ConfigError, MemberLeftError, NotInGroupError
from ..net.addressing import BROADCAST_GROUP, GroupAddress, UnicastAddress
from ..types import ProcessId, SeqNo, SubrunNo
from .causality import CausalContext, ContiguousDependencyTracker
from .config import LeaveRule, UrcgcConfig
from .decision import Decision, RequestInfo, compute_decision, initial_decision
from .effects import (
    Confirm,
    DecisionApplied,
    Deliver,
    Discarded,
    Effect,
    Left,
    MembershipChange,
    Rejoined,
    Send,
    SuspicionChange,
)
from .group_view import GroupView
from .history import History
from .message import (
    KIND_DATA,
    KIND_DECISION,
    KIND_HEARTBEAT,
    KIND_RECOVERY_RQ,
    KIND_RECOVERY_RSP,
    KIND_REQUEST,
    DecisionMessage,
    GenerateBatch,
    HeartbeatMessage,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from .mid import NO_MESSAGE, Mid
from .rejoin import KIND_JOIN, IncarnationFence, JoinRequest
from .waiting import WaitingList

__all__ = ["Member"]

#: Bound on the decision cross-check log used for equivocation
#: detection (PROTOCOL §13): old entries can no longer conflict with
#: anything adoptable, so the window stays small.
_DECISION_LOG_LIMIT = 64


class Member:
    """One urcgc protocol engine.

    Parameters
    ----------
    pid:
        This process's id, ``0 <= pid < config.n``.
    config:
        Group-wide parameter set (identical at every member).
    group:
        Multicast address of the peer group.
    """

    def __init__(
        self,
        pid: ProcessId,
        config: UrcgcConfig,
        *,
        group: GroupAddress = BROADCAST_GROUP,
    ) -> None:
        if not 0 <= pid < config.n:
            raise NotInGroupError(f"pid {pid} outside group of size {config.n}")
        self.pid = pid
        self.config = config
        self.group = group
        self.view = GroupView(config.n)
        self.context = CausalContext(pid, auto_significant=config.auto_significant)
        self.tracker = ContiguousDependencyTracker()
        self.history = History(max_length=config.max_history)
        self.waiting = WaitingList()
        self.latest_decision: Decision = initial_decision(config.n)

        self._outbox: deque[bytes] = deque()
        self._subrun: SubrunNo = SubrunNo(0)
        self._requests: dict[ProcessId, RequestInfo] = {}
        self._requests_subrun: SubrunNo = SubrunNo(-1)
        self._left_reason: str | None = None

        # Failure detection (PROTOCOL §13): the paper's K-consecutive
        # leave rule — and optionally a suspicion-tracking detector —
        # behind the pluggable repro.detect interface.
        self.detector = make_detector(pid, config)

        # Decision cross-check log for equivocation detection: subrun
        # number -> first decision seen for it.
        self._decision_log: dict[SubrunNo, Decision] = {}
        # Zombie fence: per-slot admitted-incarnation floor.
        self._fence = IncarnationFence()

        # Recovery state: per-origin attempt counters and the
        # last_processed value observed when the last attempt was made.
        self._recovery_attempts: dict[ProcessId, int] = {}
        self._recovery_baseline: dict[ProcessId, SeqNo] = {}

        # Orphan-discard marks: origin -> first discarded seq (open:
        # everything at or above the mark is presumed lost).
        self._discarded_from: dict[ProcessId, SeqNo] = {}

        # Cached last-processed vector, invalidated by the tracker's
        # version counter (the vector is rebuilt at most once per
        # processing step instead of once per request/round).
        self._lpv_cache: tuple[SeqNo, ...] | None = None
        self._lpv_version = -1

        # Rejoin extension (PROTOCOL §12).
        #: Incarnation number of this engine instance (0 = original).
        self.incarnation = 0
        #: True while this member is circulating JoinRequests.
        self.rejoining = False
        self._realign_round: int | None = None
        #: joiner -> (reported last_processed, full_group_count at
        #: stash, incarnation from the JoinRequest).
        self._pending_joins: dict[
            ProcessId, tuple[tuple[SeqNo, ...], int, int]
        ] = {}
        #: Closed void ranges per origin: [first, last] lost forever.
        self._void_ranges: dict[ProcessId, list[tuple[SeqNo, SeqNo]]] = {}
        #: Crash-grace history pins: removed pid -> full_group_count at removal.
        self._crash_pins: dict[ProcessId, int] = {}

        # Introspection counters (read by the harness and tests).
        self.generated_count = 0
        self.processed_count = 0
        self.duplicate_count = 0
        self.flow_blocked_rounds = 0
        self.forked_decisions_rejected = 0
        self.full_group_decisions_seen = 0
        self.rejoins_observed = 0
        self.equivocations_detected = 0
        self.stale_joins_fenced = 0

    # ------------------------------------------------------------------
    # public state
    # ------------------------------------------------------------------

    @property
    def has_left(self) -> bool:
        return self._left_reason is not None

    @property
    def left_reason(self) -> str | None:
        return self._left_reason

    @property
    def history_length(self) -> int:
        return len(self.history)

    @property
    def waiting_length(self) -> int:
        return len(self.waiting)

    @property
    def pending_submissions(self) -> int:
        return len(self._outbox)

    @property
    def _decision_seen_for(self) -> SubrunNo:
        """Leave-rule frontier, now owned by the detector (kept as a
        property because snapshot restore assigns it directly)."""
        return self.detector.decision_seen_for

    @_decision_seen_for.setter
    def _decision_seen_for(self, value: SubrunNo) -> None:
        self.detector.decision_seen_for = value

    def already_seen(self, mid: Mid) -> bool:
        """Would receiving ``mid`` again be a duplicate (processed or
        waiting)?  Drivers use this to dedupe batch expansions."""
        return self.tracker.is_processed(mid) or mid in self.waiting

    def last_processed_vector(self) -> tuple[SeqNo, ...]:
        """``last_processed[j]`` for every ``j`` (Section 4's request field)."""
        version = self.tracker.version
        if self._lpv_cache is None or self._lpv_version != version:
            self._lpv_cache = tuple(
                self.tracker.last_processed(ProcessId(k))
                for k in range(self.config.n)
            )
            self._lpv_version = version
        return self._lpv_cache

    # ------------------------------------------------------------------
    # application interface (used by the service layer)
    # ------------------------------------------------------------------

    def submit(self, payload: bytes) -> None:
        """Queue a payload; it is broadcast at the next permitted round.

        One message is generated per round (the paper's maximum service
        rate); extra submissions queue behind it.
        """
        if self.has_left:
            raise MemberLeftError(f"p{self.pid} left the group: {self._left_reason}")
        self._outbox.append(payload)

    def mark_significant(self, origin: ProcessId) -> None:
        """Declare a causal dependency on ``origin``'s latest processed
        message for this process's next generated message."""
        self.context.mark_significant(origin)

    # ------------------------------------------------------------------
    # rejoin interface (PROTOCOL §12)
    # ------------------------------------------------------------------

    def begin_rejoin(self) -> None:
        """Enter rejoin mode as a new incarnation of this slot.

        Called by the recovery driver after the engine was rebuilt from
        snapshot + WAL.  Until a coordinator re-admits us, rounds
        broadcast :class:`JoinRequest` instead of generating messages
        or sending REQUESTs, and decisions are adopted without the
        suicide / leave reflexes (the group rightly marks us crashed).
        """
        if not self.config.enable_rejoin:
            raise ConfigError("begin_rejoin requires config.enable_rejoin")
        if self.has_left:
            raise MemberLeftError(
                f"p{self.pid} left the group: {self._left_reason}"
            )
        self.incarnation += 1
        self.rejoining = True

    def consume_realignment(self) -> int | None:
        """Round number the driver should fast-forward its round clock
        to after re-admission (None if no realignment is pending)."""
        realign = self._realign_round
        self._realign_round = None
        return realign

    # ------------------------------------------------------------------
    # driver interface
    # ------------------------------------------------------------------

    def on_round(self, round_no: int) -> list[Effect]:
        """Handle a round boundary; returns the effects to execute."""
        if self.has_left:
            return []
        effects: list[Effect] = []
        subrun = SubrunNo(round_no // 2)
        self._subrun = subrun
        if self.rejoining:
            if round_no % 2 == 0:
                join = JoinRequest(
                    self.pid, self.incarnation, self.last_processed_vector()
                )
                effects.append(Send(self.group, join, KIND_JOIN))
            return effects
        if self.detector.tracks_suspicion:
            self.detector.advance(round_no)
        if round_no % 2 == 0:
            self._first_round(subrun, effects)
        else:
            self._second_round(subrun, effects)
        if self.detector.tracks_suspicion:
            self._drain_suspicions(effects)
        return effects

    def on_message(self, message: object) -> list[Effect]:
        """Handle a received PDU; returns the effects to execute."""
        if self.has_left:
            return []
        effects: list[Effect] = []
        if self.detector.tracks_suspicion:
            self._observe_evidence(message)
        if isinstance(message, UserMessage):
            self._handle_user_message(message, effects)
        elif isinstance(message, GenerateBatch):
            # Drivers normally expand batches before dispatch (see
            # repro.core.batcher.expand_message); accept one directly
            # so the engine stays correct behind any driver.
            for user_message in message.expand():
                if self.has_left:
                    break
                self._handle_user_message(user_message, effects)
        elif isinstance(message, RequestMessage):
            self._handle_request(message, effects)
        elif isinstance(message, DecisionMessage):
            self._apply_decision(message.decision, effects)
        elif isinstance(message, RecoveryRequest):
            self._handle_recovery_request(message, effects)
        elif isinstance(message, RecoveryResponse):
            for user_message in message.messages:
                if self.has_left:
                    break
                self._handle_user_message(user_message, effects)
        elif isinstance(message, JoinRequest):
            self._handle_join_request(message, effects)
        elif isinstance(message, HeartbeatMessage):
            pass  # pure liveness evidence, consumed above
        else:
            raise TypeError(f"unexpected message type {type(message).__name__}")
        if self.detector.tracks_suspicion:
            self._drain_suspicions(effects)
        return effects

    def _observe_evidence(self, message: object) -> None:
        """Feed the suspicion-tracking detector the PDU's liveness
        evidence (which peer process just proved it is running)."""
        if isinstance(message, HeartbeatMessage):
            self.detector.observe_heartbeat(message.sender, message.incarnation)
        elif isinstance(message, UserMessage):
            self.detector.observe_alive(message.mid.origin)
        elif isinstance(message, GenerateBatch):
            self.detector.observe_alive(message.origin)
        elif isinstance(message, (RequestMessage, RecoveryRequest, RecoveryResponse)):
            self.detector.observe_alive(message.sender)
        elif isinstance(message, DecisionMessage):
            self.detector.observe_alive(message.decision.coordinator)
        elif isinstance(message, JoinRequest):
            self.detector.observe_alive(ProcessId(message.sender))

    def _drain_suspicions(self, effects: list[Effect]) -> None:
        for event in self.detector.poll_events():
            effects.append(
                SuspicionChange(int(event.pid), event.suspected, event.reason)
            )

    def replay_generated(self, message: UserMessage) -> list[Effect]:
        """Re-apply an own message from the WAL during crash recovery.

        The mid and dependency list come from the log (they were fixed
        at generation time), so replay bypasses allocation and goes
        straight to processing.
        """
        effects: list[Effect] = []
        if self.tracker.is_processed(message.mid):
            return effects
        self.context.restore_own_seq(message.mid.seq)
        self.generated_count += 1
        self._process(message, effects)
        return effects

    # ------------------------------------------------------------------
    # round handlers
    # ------------------------------------------------------------------

    def _first_round(self, subrun: SubrunNo, effects: list[Effect]) -> None:
        if self.detector.wants_heartbeats and self.detector.heartbeat_due(subrun):
            beat = HeartbeatMessage(self.pid, self.incarnation, 2 * int(subrun))
            effects.append(Send(self.group, beat, KIND_HEARTBEAT))
        self._account_missed_decision(subrun, effects)
        if self.has_left:
            return
        self._maybe_generate(effects)
        coordinator = self.view.coordinator_of(subrun)
        info = RequestInfo(self.last_processed_vector(), self._waiting_vector())
        if coordinator == self.pid:
            # The coordinator's own state counts as a request; no
            # network traffic for it (Table 1: 2(n-1) control messages).
            self._stash_request(subrun, self.pid, info)
        else:
            # Decision circulation: forward the most recent decision so
            # the next coordinator can continue the chain.  The
            # ablation variant ships the initial decision instead,
            # which carries no knowledge.
            circulated = (
                self.latest_decision
                if self.config.circulate_decisions
                else initial_decision(self.config.n)
            )
            request = RequestMessage(self.pid, subrun, info, circulated)
            effects.append(Send(UnicastAddress(coordinator), request, KIND_REQUEST))

    def _second_round(self, subrun: SubrunNo, effects: list[Effect]) -> None:
        if self.view.coordinator_of(subrun) != self.pid:
            return
        if self._requests_subrun != subrun:
            self._requests = {}
        joiners: dict[ProcessId, SeqNo] = {}
        void_from: tuple[SeqNo, ...] = ()
        join_boundary: tuple[SeqNo, ...] = ()
        if self.config.enable_rejoin:
            for j, (reported, _, _) in self._pending_joins.items():
                if not self.view.is_alive(j):
                    # Boundary: the joiner's own frontier, raised to the
                    # group's knowledge of its sequence (defensive for a
                    # torn WAL that lost the tail of its own log).
                    joiners[j] = SeqNo(
                        max(reported[j], self.latest_decision.max_processed[j])
                    )
            void_from, join_boundary = self._render_void_vectors(joiners)
        suspected = (
            self.detector.suspects()
            if self.detector.tracks_suspicion
            else frozenset()
        )
        decision = compute_decision(
            subrun,
            self.pid,
            self.latest_decision,
            self._requests,
            self.config.K,
            joiners=joiners or None,
            void_from=void_from,
            join_boundary=join_boundary,
            suspected=suspected,
        )
        self._requests = {}
        effects.append(Send(self.group, DecisionMessage(decision), KIND_DECISION))
        self._apply_decision(decision, effects)

    def _maybe_generate(self, effects: list[Effect]) -> None:
        # Up to ``generate_burst`` messages per round (the paper's base
        # service rate is 1); flow control is re-checked per message.
        # Burst messages are emitted back to back, so their Sends form
        # one contiguous run the batching layer can coalesce into a
        # single GENERATE.
        for _ in range(self.config.generate_burst):
            if not self._outbox:
                return
            if (
                self.config.flow_control_enabled
                and len(self.history) >= self.config.effective_flow_threshold
            ):
                # Distributed flow control (Section 6): refrain from
                # generating until the history drains below the threshold.
                self.flow_blocked_rounds += 1
                return
            payload = self._outbox.popleft()
            mid, deps = self.context.next_message()
            message = UserMessage(mid, deps, payload)
            self.generated_count += 1
            effects.append(Send(self.group, message, KIND_DATA))
            self._process(message, effects)
            effects.append(Confirm(mid))

    # ------------------------------------------------------------------
    # message processing (GMT sublayer: process / wait / history)
    # ------------------------------------------------------------------

    def _handle_user_message(self, message: UserMessage, effects: list[Effect]) -> None:
        mid = message.mid
        if self._is_discarded(mid) or any(self._dep_lost(d) for d in message.deps):
            return
        if self.already_seen(mid):
            self.duplicate_count += 1
            return
        missing = {dep for dep in message.deps if not self.tracker.is_processed(dep)}
        predecessor = mid.predecessor
        if predecessor is not None and not self.tracker.is_processed(predecessor):
            # Sequence contiguity is an implicit dependency even if the
            # sender omitted it from the explicit list.
            missing.add(predecessor)
        if missing:
            self.waiting.add(message, missing)
        else:
            self._process(message, effects)

    def _process(self, message: UserMessage, effects: list[Effect]) -> None:
        """Process a message whose causal cut is complete, then drain
        every waiting message this releases (in causal order)."""
        queue = deque([message])
        while queue:
            current = queue.popleft()
            self.tracker.mark_processed(current.mid)
            self.context.note_processed(current.mid)
            self.history.store(current)
            self.processed_count += 1
            # Progress on this origin resets its recovery budget.
            self._recovery_attempts.pop(current.mid.origin, None)
            self._recovery_baseline.pop(current.mid.origin, None)
            effects.append(Deliver(current))
            queue.extend(self.waiting.notify_processed(current.mid))
            # If this processing carried the frontier across a void gap
            # (rejoin extension), the void seqs count as processed too:
            # release anything waiting on them.
            frontier = self.tracker.last_processed(current.mid.origin)
            for seq in range(current.mid.seq + 1, frontier + 1):
                queue.extend(
                    self.waiting.notify_processed(Mid(current.mid.origin, SeqNo(seq)))
                )

    def _is_discarded(self, mid: Mid) -> bool:
        """Is ``mid`` itself destroyed — above an open orphan mark, or
        inside a closed void range of a rejoined origin?"""
        mark = self._discarded_from.get(mid.origin)
        if mark is not None and mid.seq >= mark:
            return True
        return any(
            first <= mid.seq <= last
            for first, last in self._void_ranges.get(mid.origin, ())
        )

    def _dep_lost(self, dep: Mid) -> bool:
        """Is ``dep`` unsatisfiable forever?  Only an *open* orphan mark
        dooms dependents; a dependency inside a closed void range is
        treated as satisfied (the group agreed the range will never
        arrive), which is what lets a rejoined incarnation's first
        message — whose predecessor is the void boundary — through."""
        mark = self._discarded_from.get(dep.origin)
        return mark is not None and dep.seq >= mark

    def _waiting_vector(self) -> tuple[SeqNo, ...]:
        oldest = self.waiting.oldest_waiting()
        return tuple(
            oldest.get(ProcessId(k), NO_MESSAGE) for k in range(self.config.n)
        )

    # ------------------------------------------------------------------
    # coordination (GC sublayer: requests and decisions)
    # ------------------------------------------------------------------

    def _stash_request(
        self, subrun: SubrunNo, sender: ProcessId, info: RequestInfo
    ) -> None:
        if self._requests_subrun != subrun:
            self._requests = {}
            self._requests_subrun = subrun
        self._requests[sender] = info

    def _handle_request(self, request: RequestMessage, effects: list[Effect]) -> None:
        # Adopt a newer circulated decision regardless of whether we
        # are the coordinator the sender believes in.
        self._apply_decision(request.decision, effects)
        if self.has_left or self.rejoining:
            return
        if self.view.coordinator_of(request.subrun) != self.pid:
            return
        if request.subrun < self._subrun:
            return  # stale request from a past subrun
        self._stash_request(request.subrun, request.sender, request.info)

    def _is_equivocation(self, decision: Decision) -> bool:
        """Cross-check ``decision`` against the decision log.

        An equivocating coordinator sends *different* decisions for the
        same subrun to different members; circulation then confronts
        each member with both variants.  Two decisions with the same
        number and the same coordinator but different content prove the
        equivocation, and the later-seen variant is rejected (the
        defense is detection + first-seen-wins — tolerating the fork
        outright would need authenticated consensus, see PROTOCOL §13).
        Same-number decisions from *different* coordinators are the
        benign dual-coordinator race under view divergence and pass
        through to the ordinary chain discipline.
        """
        seen = self._decision_log.get(decision.number)
        if seen is None:
            self._decision_log[decision.number] = decision
            if len(self._decision_log) > _DECISION_LOG_LIMIT:
                del self._decision_log[min(self._decision_log)]
            return False
        if seen.coordinator == decision.coordinator and seen != decision:
            self.equivocations_detected += 1
            return True
        return False

    def _apply_decision(self, decision: Decision, effects: list[Effect]) -> None:
        if self.rejoining:
            self._apply_decision_rejoining(decision, effects)
            return
        if self._is_equivocation(decision):
            return
        if not decision.is_newer_than(self.latest_decision):
            return
        if decision.chain <= self.latest_decision.chain:
            # A later-numbered decision with a shorter (or equal) chain
            # did not descend from the decision we already hold: its
            # coordinator was cut off from the circulation (e.g. a
            # totally receive-omitting process).  The paper's
            # consistency argument ("coordinator c knows the decision
            # of coordinator c-1") only covers decisions extending the
            # chain, so a forked decision is discarded.
            self.forked_decisions_rejected += 1
            return
        chain_gap = decision.chain - self.latest_decision.chain - 1
        # The CONFIRMED rule: a chain gap proves we failed to receive
        # from that many consecutive (decision-producing) coordinators.
        leave_reason = self.detector.observe_chain_gap(chain_gap)
        if leave_reason is not None:
            self._leave(leave_reason, effects)
            return
        self.latest_decision = decision
        self.detector.decision_adopted(decision.number)
        effects.append(DecisionApplied(decision))

        if self.config.enable_rejoin:
            self._sync_rejoin_state(decision, effects)
        removed = self.view.apply_vector(list(decision.alive))
        if removed:
            effects.append(
                MembershipChange(
                    tuple(int(pid) for pid in removed),
                    tuple(self.view.alive_vector()),
                )
            )
        if not self.view.is_alive(self.pid):
            # "When an alive process notices it is supposed dead, it
            # commits suicide."
            self._leave("suicide: presumed crashed by the group", effects)
            return
        if self.config.enable_rejoin and removed:
            # Freeze the current floors so a quick rejoin of the removed
            # process can still be served the interval it missed; the
            # pin expires after recovery_grace full-group decisions.
            for gone in removed:
                self.history.set_recovery_floor(
                    ("crash", int(gone)),
                    {
                        ProcessId(k): self.history.floor(ProcessId(k))
                        for k in range(decision.n)
                    },
                )
                self._crash_pins[gone] = decision.full_group_count

        if decision.full_group:
            self.full_group_decisions_seen += 1
            self.history.clean_vector(
                {
                    ProcessId(k): decision.stable[k]
                    for k in range(decision.n)
                }
            )
            self._orphan_discard(decision, effects)
        if self.config.enable_rejoin:
            self._release_pins(decision)
        self._plan_recovery(decision, effects)

    def _orphan_discard(self, decision: Decision, effects: list[Effect]) -> None:
        """Destroy waiting messages whose causal predecessor is lost.

        Fires only on full-group decisions, where ``max_processed`` is
        exact over the active group: if the oldest waiting message of a
        *crashed* origin leaves a gap above ``max_processed``, every
        holder of the gap message crashed and the tail of the sequence
        is unrecoverable.
        """
        for k in range(decision.n):
            if decision.alive[k]:
                continue
            origin = ProcessId(k)
            min_waiting = decision.min_waiting[k]
            max_processed = decision.max_processed[k]
            if min_waiting == NO_MESSAGE or min_waiting <= max_processed + 1:
                continue
            lost = Mid(origin, SeqNo(max_processed + 1))
            mark = SeqNo(max_processed + 1)
            current = self._discarded_from.get(origin)
            if current is not None and current <= mark:
                continue
            self._discarded_from[origin] = mark
            discarded = self.waiting.discard_dependent(lost)
            effects.append(Discarded(lost, tuple(discarded)))

    # ------------------------------------------------------------------
    # rejoin mechanics (PROTOCOL §12)
    # ------------------------------------------------------------------

    def _handle_join_request(self, join: JoinRequest, effects: list[Effect]) -> None:
        """A recovering incarnation asked to be re-admitted.

        Every member pins its history at the joiner's reported frontier
        (so compaction cannot outrun the state transfer) and drops any
        waiting stragglers of the joiner's *previous* incarnation above
        its boundary; the subrun coordinator additionally folds the
        joiner into its next decision.
        """
        if not self.config.enable_rejoin or self.rejoining:
            return
        sender = ProcessId(join.sender)
        if sender == self.pid or len(join.last_processed) != self.config.n:
            return
        if self._fence.is_stale(sender, join.incarnation):
            # Incarnation fence (PROTOCOL §13): a replayed JoinRequest
            # from an incarnation this member already saw admitted is a
            # zombie — it must not re-pin histories or be folded into
            # another decision.
            self.stale_joins_fenced += 1
            return
        self._pending_joins[sender] = (
            join.last_processed,
            self.latest_decision.full_group_count,
            join.incarnation,
        )
        self.history.set_recovery_floor(
            ("join", int(sender)),
            {
                ProcessId(k): join.last_processed[k]
                for k in range(self.config.n)
            },
        )
        # Old-incarnation stragglers above the boundary can never be
        # completed (mids are incarnation-blind): drop them silently so
        # they cannot mix with the new incarnation's sequence.
        boundary = join.last_processed[sender]
        self.waiting.discard_dependent(Mid(sender, SeqNo(boundary + 1)))

    def _sync_rejoin_state(self, decision: Decision, effects: list[Effect]) -> None:
        """Adopt the decision-carried rejoin bookkeeping.

        Runs before ``apply_vector``: (1) adopt group-agreed orphan
        marks and close void ranges whose boundary the decision
        publishes; (2) re-admit any slot the (strictly newer, chain-
        verified) decision marks alive that our view had removed.
        """
        if decision.void_from:
            for k in range(decision.n):
                mark = decision.void_from[k]
                if mark == NO_MESSAGE:
                    continue
                origin = ProcessId(k)
                boundary = (
                    decision.join_boundary[k]
                    if decision.join_boundary
                    else NO_MESSAGE
                )
                if boundary >= mark:
                    self._close_void(origin, SeqNo(mark), SeqNo(boundary), effects)
                else:
                    self._adopt_mark(origin, SeqNo(mark), effects)
        for k in range(decision.n):
            origin = ProcessId(k)
            if origin == self.pid:
                continue
            if decision.alive[k] and not self.view.is_alive(origin):
                self.view.restore(origin)
                self.rejoins_observed += 1
                pending = self._pending_joins.get(origin)
                self._fence.admit(
                    origin, pending[2] if pending is not None else None
                )
                boundary = (
                    decision.join_boundary[k]
                    if decision.join_boundary
                    else self.tracker.last_processed(origin)
                )
                # Drop old-incarnation stragglers above the boundary.
                self.waiting.discard_dependent(Mid(origin, SeqNo(boundary + 1)))
                effects.append(Rejoined(int(origin), int(boundary)))
        for j in decision.joiners:
            pending = self._pending_joins.get(ProcessId(j))
            if pending is not None:
                # Keep the pin until the new incarnation contributes,
                # but restart its expiry clock at admission.
                self._pending_joins[ProcessId(j)] = (
                    pending[0],
                    decision.full_group_count,
                    pending[2],
                )

    def _adopt_mark(self, origin: ProcessId, mark: SeqNo, effects: list[Effect]) -> None:
        """Adopt an open orphan mark published by a decision."""
        current = self._discarded_from.get(origin)
        if current is not None and current <= mark:
            return
        if any(first <= mark <= last for first, last in self._void_ranges.get(origin, ())):
            return  # already resolved into a closed range locally
        self._discarded_from[origin] = mark
        lost = Mid(origin, mark)
        discarded = self.waiting.discard_dependent(lost)
        effects.append(Discarded(lost, tuple(discarded)))

    def _close_void(
        self, origin: ProcessId, first: SeqNo, last: SeqNo, effects: list[Effect]
    ) -> None:
        """Close the void range ``[first, last]`` of ``origin``.

        The range is agreed lost forever (orphan-discarded, bounded by
        the rejoined incarnation's boundary): register it with the
        tracker so contiguity jumps it, destroy anything waiting inside
        it, and release messages that were only blocked on void seqs.
        """
        ranges = self._void_ranges.setdefault(origin, [])
        if (first, last) in ranges:
            return
        lost = Mid(origin, first)
        discarded = self.waiting.discard_dependent(lost)
        ranges.append((first, last))
        ranges.sort()
        self.tracker.add_gap(origin, first, last)
        mark = self._discarded_from.get(origin)
        if mark is not None and first <= mark <= last:
            del self._discarded_from[origin]
        # Audit trail: the whole range counts as discarded (exempt from
        # uniform atomicity), plus whatever the waiting list destroyed.
        void_mids = tuple(
            Mid(origin, SeqNo(seq)) for seq in range(first, last + 1)
        )
        effects.append(Discarded(lost, void_mids + tuple(discarded)))
        # Seqs the frontier already covers satisfy waiters immediately.
        frontier = self.tracker.last_processed(origin)
        released: list[UserMessage] = []
        for seq in range(first, min(last, frontier) + 1):
            released.extend(self.waiting.notify_processed(Mid(origin, SeqNo(seq))))
        for message in released:
            self._process(message, effects)

    def _render_void_vectors(
        self, joiners: dict[ProcessId, SeqNo]
    ) -> tuple[tuple[SeqNo, ...], tuple[SeqNo, ...]]:
        """The coordinator's rendering of void knowledge for a decision.

        Open marks travel with a zero boundary; the latest closed range
        travels whole (so members that missed the closing decision still
        learn it); a slot being admitted right now gets its mark closed
        at the join boundary.  All-zero vectors collapse to empty tuples
        to keep the legacy wire size when nothing ever crashed.
        """
        n = self.config.n
        void = [NO_MESSAGE] * n
        bound = [NO_MESSAGE] * n
        for k in range(n):
            origin = ProcessId(k)
            mark = self._discarded_from.get(origin)
            ranges = self._void_ranges.get(origin)
            if mark is not None:
                void[k] = mark
            elif ranges:
                void[k], bound[k] = ranges[-1]
        for j, boundary in joiners.items():
            mark = self._discarded_from.get(j)
            if mark is not None and mark <= boundary:
                void[j] = mark
                bound[j] = boundary
        if not any(void):
            return (), ()
        return tuple(void), tuple(bound)

    def _release_pins(self, decision: Decision) -> None:
        """Expire history pins that served their purpose.

        A crash pin lifts when the slot rejoins or after
        ``recovery_grace`` further full-group decisions; a join pin
        lifts when the new incarnation contributes to a decision (its
        state transfer is over) or when its expiry clock runs out
        without an admission.
        """
        for gone, at in list(self._crash_pins.items()):
            if (
                self.view.is_alive(gone)
                or decision.full_group_count - at >= self.config.recovery_grace
            ):
                self.history.clear_recovery_floor(("crash", int(gone)))
                del self._crash_pins[gone]
        for j, (_, at, _) in list(self._pending_joins.items()):
            admitted = self.view.is_alive(j)
            if admitted and decision.contributors[j]:
                self.history.clear_recovery_floor(("join", int(j)))
                del self._pending_joins[j]
            elif (
                not admitted
                and decision.full_group_count - at >= self.config.recovery_grace
            ):
                self.history.clear_recovery_floor(("join", int(j)))
                del self._pending_joins[j]

    def _apply_decision_rejoining(
        self, decision: Decision, effects: list[Effect]
    ) -> None:
        """Decision adoption while circulating JoinRequests.

        Same chain discipline as the normal path, but without suicide
        (the group *should* mark us crashed right now), without the
        missed-decision leave rules (we missed decisions by definition),
        and without coordinator duties.  Seeing ourselves alive in a
        decision completes the rejoin.
        """
        if self._is_equivocation(decision):
            return
        if not decision.is_newer_than(self.latest_decision):
            return
        if decision.chain <= self.latest_decision.chain:
            self.forked_decisions_rejected += 1
            return
        self.latest_decision = decision
        # Rejoin path: update the seen-frontier but accrue/reset no
        # misses (a rejoining member missed decisions by definition).
        self.detector.decision_adopted(decision.number, reset_misses=False)
        effects.append(DecisionApplied(decision))
        self._sync_rejoin_state(decision, effects)
        removed: list[ProcessId] = []
        for k in range(decision.n):
            origin = ProcessId(k)
            if origin != self.pid and not decision.alive[k] and self.view.is_alive(origin):
                self.view.remove(origin)
                removed.append(origin)
        if removed:
            effects.append(
                MembershipChange(
                    tuple(int(pid) for pid in removed),
                    tuple(self.view.alive_vector()),
                )
            )
        if decision.alive[self.pid]:
            self._complete_rejoin(decision, effects)

    def _complete_rejoin(self, decision: Decision, effects: list[Effect]) -> None:
        self.rejoining = False
        self.view.restore(self.pid)
        self.detector.reset()
        self._fence.admit(self.pid, self.incarnation)
        # Resume the subrun clock right after the admitting decision.
        self._realign_round = 2 * (int(decision.number) + 1)
        boundary = (
            decision.join_boundary[self.pid]
            if decision.join_boundary
            else NO_MESSAGE
        )
        if boundary > self.context.own_last_seq:
            # The group knows more of our old sequence than our log did
            # (torn tail): never reuse those seqs.
            self.context.restore_own_seq(SeqNo(boundary))
        effects.append(Rejoined(int(self.pid), int(self.context.own_last_seq)))
        # Rebroadcast the unstable suffix of our own sequence: messages
        # the crash may have kept from some peers, which uniform
        # atomicity requires everyone (or no one) to process.
        start = SeqNo(decision.max_processed[self.pid] + 1)
        for message in self.history.fetch_range(
            self.pid, start, self.context.own_last_seq
        ):
            if not self._is_discarded(message.mid):
                effects.append(Send(self.group, message, KIND_DATA))
        # Catch up on what we missed while down (state transfer via the
        # ordinary recovery machinery; peers pinned their histories).
        self._plan_recovery(decision, effects)

    def _plan_recovery(self, decision: Decision, effects: list[Effect]) -> None:
        """Ask the most-updated process for the messages we miss."""
        ranges_by_holder: dict[ProcessId, list[tuple[ProcessId, SeqNo, SeqNo]]] = {}
        for k in range(decision.n):
            origin = ProcessId(k)
            mine = self.tracker.last_processed(origin)
            target = decision.max_processed[k]
            discarded = self._discarded_from.get(origin)
            if discarded is not None:
                target = min(target, SeqNo(discarded - 1))
            if target <= mine:
                continue
            holder = decision.most_updated[k]
            if holder == self.pid or not self.view.is_alive(holder):
                continue
            baseline = self._recovery_baseline.get(origin)
            if baseline is not None and baseline >= mine:
                # No progress since the previous attempt.
                attempts = self._recovery_attempts.get(origin, 0) + 1
            else:
                attempts = 1
            self._recovery_attempts[origin] = attempts
            self._recovery_baseline[origin] = mine
            if attempts > self.config.recovery_budget:
                self._leave(
                    f"recovery of origin {origin} exhausted after {attempts - 1} attempts",
                    effects,
                )
                return
            first = SeqNo(mine + 1)
            ranges_by_holder.setdefault(holder, []).append((origin, first, target))
        for holder, ranges in sorted(ranges_by_holder.items()):
            request = RecoveryRequest(self.pid, tuple(ranges))
            effects.append(Send(UnicastAddress(holder), request, KIND_RECOVERY_RQ))

    def _handle_recovery_request(
        self, request: RecoveryRequest, effects: list[Effect]
    ) -> None:
        messages: list[UserMessage] = []
        for origin, first, last in request.ranges:
            messages.extend(self.history.fetch_range(origin, first, last))
        response = RecoveryResponse(self.pid, tuple(messages))
        effects.append(Send(UnicastAddress(request.sender), response, KIND_RECOVERY_RSP))

    # ------------------------------------------------------------------
    # leave rules
    # ------------------------------------------------------------------

    def _account_missed_decision(self, subrun: SubrunNo, effects: list[Effect]) -> None:
        """At the start of subrun ``s`` check whether subrun ``s-1``
        produced a decision we received (STRICT rule only).

        The counting itself lives in the detector; the member supplies
        the *excusal* evidence — no coordinator exists for the subrun,
        the local view already marks it crashed, or the suspicion
        surface suspects it (a suspected-silent coordinator is the
        detector's failure to observe, not ours).
        """
        if self.config.leave_rule is not LeaveRule.STRICT or subrun == 0:
            return
        previous = SubrunNo(subrun - 1)
        try:
            coordinator = self.view.coordinator_of(previous)
        except NotInGroupError:
            excused = True
        else:
            excused = (
                not self.view.is_alive(coordinator)
                or coordinator in self.detector.suspects()
            )
        leave_reason = self.detector.account_missed_decision(
            previous, excused=excused
        )
        if leave_reason is not None:
            self._leave(leave_reason, effects)

    def _leave(self, reason: str, effects: list[Effect]) -> None:
        if self.has_left:
            return
        self._left_reason = reason
        self.view.remove(self.pid)
        effects.append(Left(reason))
