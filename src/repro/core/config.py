"""Configuration for the urcgc protocol.

Collects every tunable the paper names — group cardinality ``n``, the
crash-detection retry budget ``K``, the recovery budget ``R``
(constrained to ``R > 2K``, since the paper requires ``R > 2K + f``),
the resilience degree ``t = (n-1)/2``, and the flow-control threshold
(``8n`` in the paper's simulations) — and validates the whole set
eagerly so a bad experiment fails at construction, not mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigError

__all__ = ["LeaveRule", "BatchingConfig", "FailureDetectorConfig", "UrcgcConfig"]

#: Detector kinds :func:`repro.detect.make_detector` understands.
DETECTOR_KINDS = ("k-consecutive", "heartbeat", "oracle")


@dataclass(frozen=True)
class FailureDetectorConfig:
    """Selects and tunes the failure-detection subsystem.

    Lives here (not in :mod:`repro.detect`) so ``core`` never imports
    the detector package at module level; the factory in
    :mod:`repro.detect` interprets it.

    Parameters
    ----------
    kind:
        ``"k-consecutive"`` — the paper's rule, extracted verbatim from
        the member (the default when ``failure_detector`` is unset);
        ``"heartbeat"`` — eventually-perfect timeout-with-backoff over
        HEARTBEAT PDUs and an RTT-style gap estimator;
        ``"oracle"`` — a test-only perfect detector whose suspect set
        is driven directly by the harness.
    heartbeat_every:
        Subruns between HEARTBEAT broadcasts (heartbeat kind only).
    timeout_floor:
        Minimum silence, in *rounds*, before a peer may be suspected.
    timeout_k:
        Deviation multiplier of the gap estimator's timeout bound
        (RFC 6298's ``k``).
    backoff:
        Factor the per-peer timeout scale grows by on each false
        suspicion; this is what makes the detector eventually perfect
        in a partially synchronous run.
    max_timeout:
        Hard cap, in rounds, on the per-peer suspicion timeout.
    """

    kind: str = "heartbeat"
    heartbeat_every: int = 1
    timeout_floor: float = 6.0
    timeout_k: float = 4.0
    backoff: float = 2.0
    max_timeout: float = 512.0

    def __post_init__(self) -> None:
        if self.kind not in DETECTOR_KINDS:
            raise ConfigError(
                f"unknown detector kind {self.kind!r}; expected one of {DETECTOR_KINDS}"
            )
        if self.heartbeat_every < 1:
            raise ConfigError(
                f"heartbeat_every must be >= 1, got {self.heartbeat_every}"
            )
        if self.timeout_floor <= 0:
            raise ConfigError(f"timeout_floor must be > 0, got {self.timeout_floor}")
        if self.timeout_k < 0:
            raise ConfigError(f"timeout_k must be >= 0, got {self.timeout_k}")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_timeout < self.timeout_floor:
            raise ConfigError(
                f"max_timeout must be >= timeout_floor, got {self.max_timeout}"
            )


@dataclass(frozen=True)
class BatchingConfig:
    """Wire-level coalescing knobs (the throughput layer).

    With batching enabled the driver routes every engine's outgoing
    sends through a :class:`~repro.core.batcher.Batcher`: runs of
    contiguous own-sequence data messages collapse into one GENERATE
    carrying the shared dependency vector
    (:class:`~repro.core.message.GenerateBatch`), and any remaining
    consecutive same-destination messages ride one
    :class:`~repro.net.wire.BatchFrame` envelope.  Batching is purely a
    wire transform — the receiver expands each frame back into the
    identical PDU sequence, so processing order is unchanged (the
    equivalence property in ``tests/properties`` checks exactly this).

    Parameters
    ----------
    max_batch:
        Maximum sub-messages coalesced into one frame.
    max_bytes:
        Soft ceiling on a frame's payload bytes; a run is split when
        adding the next sub-message would cross it.  Keep it below the
        transport MTU (or the 64 KiB UDP datagram limit) minus headers.
    """

    max_batch: int = 16
    max_bytes: int = 48 * 1024

    def __post_init__(self) -> None:
        if self.max_batch < 2:
            raise ConfigError(f"max_batch must be >= 2, got {self.max_batch}")
        if self.max_bytes < 64:
            raise ConfigError(f"max_bytes must be >= 64, got {self.max_bytes}")


class LeaveRule(Enum):
    """How a member decides it is receive-omitting and must leave.

    ``CONFIRMED``
        Count only decisions *known to have been made* (decision chains
        carry a monotone counter; a gap in the chain proves missed
        decisions).  Consecutive coordinator crashes produce no
        decisions, so they are never mis-counted — this is the reading
        of "fails to receive from K consecutive coordinators" that
        keeps the group alive through ``f >= K`` coordinator crashes
        (Figure 5 sweeps exactly that).
    ``STRICT``
        Count every subrun without a received decision, excusing only
        coordinators already marked crashed in the local view.  This is
        the literal Lemma 4.1 behaviour and additionally bounds the
        damage of a process that can receive *nothing at all* (which
        the CONFIRMED rule cannot detect locally).
    ``NONE``
        Never leave on missed decisions (for controlled experiments).
    """

    CONFIRMED = "confirmed"
    STRICT = "strict"
    NONE = "none"


@dataclass(frozen=True)
class UrcgcConfig:
    """Immutable parameter set for one urcgc group.

    Parameters
    ----------
    n:
        Group cardinality (fixed at start; the paper's membership only
        shrinks as crashes are detected).
    K:
        Subruns/retries before a silent process is declared crashed and
        removed, and before a member applying ``LeaveRule`` gives up.
    R:
        Unsuccessful history-recovery attempts before a member leaves.
        Defaults to ``2K + 2`` which satisfies the paper's ``R > 2K + f``
        for ``f <= 1``; experiments with more coordinator crashes pass
        a larger value explicitly.
    flow_threshold:
        History length at which a process refrains from generating new
        messages; ``None`` computes the paper's ``8n``; 0 disables flow
        control.
    max_history:
        Optional hard cap on history length; exceeding it raises
        :class:`~repro.errors.HistoryOverflowError`.  Only meaningful
        with flow control disabled.
    leave_rule:
        See :class:`LeaveRule`.
    circulate_decisions:
        The decision-circulation mechanism (each request forwards the
        most recent decision).  Disabling it is an *ablation only*: it
        breaks the paper's consistency argument under coordinator
        crashes and slows history cleaning.
    auto_significant:
        When True (default) every processed message of a peer becomes a
        causal dependency of the next generated message — the
        conservative policy the paper simulates.  When False the
        application declares significance explicitly through
        :meth:`~repro.core.member.Member.mark_significant`, realizing
        the concurrency the paper's Definition 3.1 permits.
    enable_rejoin:
        When True a process removed as crashed may come back as a *new
        incarnation* of its slot via the JOIN decision flow (PROTOCOL
        §12).  Decisions then carry the join bookkeeping vectors and
        members pin their histories while a rejoin or a recent crash is
        outstanding.  Off by default: the paper does not define joins,
        and the base experiments run with the shrink-only view.
    recovery_grace:
        With rejoin enabled: how many *further* full-group decisions a
        member keeps its history floors pinned after a crash removal,
        so that a quick rejoin can still state-transfer the interval.
        Bounds the space a dead slot can hold hostage (the
        bounded-space catch-up concern of Nédelec et al.).
    generate_burst:
        Maximum application messages a member generates in one (first)
        round.  The paper's base service rate is one per round; a burst
        above 1 drains the outbox faster, with flow control re-checked
        per message.  Messages generated back to back in a round share
        their external dependency vector, which is what lets the
        batching layer coalesce them into a single GENERATE.
    batching:
        Optional :class:`BatchingConfig`: the sim harness and the live
        runtime then coalesce consecutive same-destination sends into
        batch frames (see ``docs/PERFORMANCE.md``).  ``None`` (default)
        keeps the one-PDU-per-datagram wire behaviour.
    observability:
        When True the driver (``SimCluster`` or ``AsyncGroup``) records
        structured span events (subrun / request / decision / generated
        / processed) into a :class:`repro.obs.Recorder`, from which a
        JSONL trace and registry report can be exported (see
        ``docs/OBSERVABILITY.md``).  Off by default: the disabled path
        is a no-op recorder, so timing-sensitive runs pay nothing.
    failure_detector:
        Optional :class:`FailureDetectorConfig` selecting the failure
        detection subsystem (PROTOCOL §13, :mod:`repro.detect`).
        ``None`` (default) uses the paper's K-consecutive rule with
        behaviour bit-identical to the pre-detector engine; the
        ``"heartbeat"`` kind adds HEARTBEAT traffic and a suspicion set
        that excuses suspected coordinators under the STRICT leave rule
        and feeds the coordinator's removal accounting.
    """

    n: int
    K: int = 3
    R: int | None = None
    flow_threshold: int | None = None
    max_history: int | None = None
    leave_rule: LeaveRule = LeaveRule.CONFIRMED
    circulate_decisions: bool = True
    auto_significant: bool = True
    enable_rejoin: bool = False
    recovery_grace: int = 8
    generate_burst: int = 1
    batching: BatchingConfig | None = None
    observability: bool = False
    failure_detector: FailureDetectorConfig | None = None
    #: Resilience degree: computed, not settable.
    t: int = field(init=False)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigError(f"a group needs at least 2 processes, got n={self.n}")
        if self.K < 1:
            raise ConfigError(f"K must be >= 1, got {self.K}")
        if self.R is not None and self.R <= 2 * self.K:
            raise ConfigError(
                f"R must exceed 2K (paper: R > 2K + f); got R={self.R}, K={self.K}"
            )
        if self.flow_threshold is not None and self.flow_threshold < 0:
            raise ConfigError(f"flow_threshold must be >= 0, got {self.flow_threshold}")
        if self.max_history is not None and self.max_history < 1:
            raise ConfigError(f"max_history must be >= 1, got {self.max_history}")
        if self.recovery_grace < 1:
            raise ConfigError(f"recovery_grace must be >= 1, got {self.recovery_grace}")
        if self.generate_burst < 1:
            raise ConfigError(
                f"generate_burst must be >= 1, got {self.generate_burst}"
            )
        object.__setattr__(self, "t", (self.n - 1) // 2)

    @property
    def recovery_budget(self) -> int:
        """Effective R: explicit value or the paper-safe default."""
        return self.R if self.R is not None else 2 * self.K + 2

    @property
    def effective_flow_threshold(self) -> int:
        """Effective history threshold: explicit, or the paper's 8n.

        A value of 0 disables flow control.
        """
        if self.flow_threshold is None:
            return 8 * self.n
        return self.flow_threshold

    @property
    def flow_control_enabled(self) -> bool:
        return self.effective_flow_threshold > 0
