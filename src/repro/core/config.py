"""Configuration for the urcgc protocol.

Collects every tunable the paper names — group cardinality ``n``, the
crash-detection retry budget ``K``, the recovery budget ``R``
(constrained to ``R > 2K``, since the paper requires ``R > 2K + f``),
the resilience degree ``t = (n-1)/2``, and the flow-control threshold
(``8n`` in the paper's simulations) — and validates the whole set
eagerly so a bad experiment fails at construction, not mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigError

__all__ = ["LeaveRule", "BatchingConfig", "UrcgcConfig"]


@dataclass(frozen=True)
class BatchingConfig:
    """Wire-level coalescing knobs (the throughput layer).

    With batching enabled the driver routes every engine's outgoing
    sends through a :class:`~repro.core.batcher.Batcher`: runs of
    contiguous own-sequence data messages collapse into one GENERATE
    carrying the shared dependency vector
    (:class:`~repro.core.message.GenerateBatch`), and any remaining
    consecutive same-destination messages ride one
    :class:`~repro.net.wire.BatchFrame` envelope.  Batching is purely a
    wire transform — the receiver expands each frame back into the
    identical PDU sequence, so processing order is unchanged (the
    equivalence property in ``tests/properties`` checks exactly this).

    Parameters
    ----------
    max_batch:
        Maximum sub-messages coalesced into one frame.
    max_bytes:
        Soft ceiling on a frame's payload bytes; a run is split when
        adding the next sub-message would cross it.  Keep it below the
        transport MTU (or the 64 KiB UDP datagram limit) minus headers.
    """

    max_batch: int = 16
    max_bytes: int = 48 * 1024

    def __post_init__(self) -> None:
        if self.max_batch < 2:
            raise ConfigError(f"max_batch must be >= 2, got {self.max_batch}")
        if self.max_bytes < 64:
            raise ConfigError(f"max_bytes must be >= 64, got {self.max_bytes}")


class LeaveRule(Enum):
    """How a member decides it is receive-omitting and must leave.

    ``CONFIRMED``
        Count only decisions *known to have been made* (decision chains
        carry a monotone counter; a gap in the chain proves missed
        decisions).  Consecutive coordinator crashes produce no
        decisions, so they are never mis-counted — this is the reading
        of "fails to receive from K consecutive coordinators" that
        keeps the group alive through ``f >= K`` coordinator crashes
        (Figure 5 sweeps exactly that).
    ``STRICT``
        Count every subrun without a received decision, excusing only
        coordinators already marked crashed in the local view.  This is
        the literal Lemma 4.1 behaviour and additionally bounds the
        damage of a process that can receive *nothing at all* (which
        the CONFIRMED rule cannot detect locally).
    ``NONE``
        Never leave on missed decisions (for controlled experiments).
    """

    CONFIRMED = "confirmed"
    STRICT = "strict"
    NONE = "none"


@dataclass(frozen=True)
class UrcgcConfig:
    """Immutable parameter set for one urcgc group.

    Parameters
    ----------
    n:
        Group cardinality (fixed at start; the paper's membership only
        shrinks as crashes are detected).
    K:
        Subruns/retries before a silent process is declared crashed and
        removed, and before a member applying ``LeaveRule`` gives up.
    R:
        Unsuccessful history-recovery attempts before a member leaves.
        Defaults to ``2K + 2`` which satisfies the paper's ``R > 2K + f``
        for ``f <= 1``; experiments with more coordinator crashes pass
        a larger value explicitly.
    flow_threshold:
        History length at which a process refrains from generating new
        messages; ``None`` computes the paper's ``8n``; 0 disables flow
        control.
    max_history:
        Optional hard cap on history length; exceeding it raises
        :class:`~repro.errors.HistoryOverflowError`.  Only meaningful
        with flow control disabled.
    leave_rule:
        See :class:`LeaveRule`.
    circulate_decisions:
        The decision-circulation mechanism (each request forwards the
        most recent decision).  Disabling it is an *ablation only*: it
        breaks the paper's consistency argument under coordinator
        crashes and slows history cleaning.
    auto_significant:
        When True (default) every processed message of a peer becomes a
        causal dependency of the next generated message — the
        conservative policy the paper simulates.  When False the
        application declares significance explicitly through
        :meth:`~repro.core.member.Member.mark_significant`, realizing
        the concurrency the paper's Definition 3.1 permits.
    enable_rejoin:
        When True a process removed as crashed may come back as a *new
        incarnation* of its slot via the JOIN decision flow (PROTOCOL
        §12).  Decisions then carry the join bookkeeping vectors and
        members pin their histories while a rejoin or a recent crash is
        outstanding.  Off by default: the paper does not define joins,
        and the base experiments run with the shrink-only view.
    recovery_grace:
        With rejoin enabled: how many *further* full-group decisions a
        member keeps its history floors pinned after a crash removal,
        so that a quick rejoin can still state-transfer the interval.
        Bounds the space a dead slot can hold hostage (the
        bounded-space catch-up concern of Nédelec et al.).
    generate_burst:
        Maximum application messages a member generates in one (first)
        round.  The paper's base service rate is one per round; a burst
        above 1 drains the outbox faster, with flow control re-checked
        per message.  Messages generated back to back in a round share
        their external dependency vector, which is what lets the
        batching layer coalesce them into a single GENERATE.
    batching:
        Optional :class:`BatchingConfig`: the sim harness and the live
        runtime then coalesce consecutive same-destination sends into
        batch frames (see ``docs/PERFORMANCE.md``).  ``None`` (default)
        keeps the one-PDU-per-datagram wire behaviour.
    observability:
        When True the driver (``SimCluster`` or ``AsyncGroup``) records
        structured span events (subrun / request / decision / generated
        / processed) into a :class:`repro.obs.Recorder`, from which a
        JSONL trace and registry report can be exported (see
        ``docs/OBSERVABILITY.md``).  Off by default: the disabled path
        is a no-op recorder, so timing-sensitive runs pay nothing.
    """

    n: int
    K: int = 3
    R: int | None = None
    flow_threshold: int | None = None
    max_history: int | None = None
    leave_rule: LeaveRule = LeaveRule.CONFIRMED
    circulate_decisions: bool = True
    auto_significant: bool = True
    enable_rejoin: bool = False
    recovery_grace: int = 8
    generate_burst: int = 1
    batching: BatchingConfig | None = None
    observability: bool = False
    #: Resilience degree: computed, not settable.
    t: int = field(init=False)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigError(f"a group needs at least 2 processes, got n={self.n}")
        if self.K < 1:
            raise ConfigError(f"K must be >= 1, got {self.K}")
        if self.R is not None and self.R <= 2 * self.K:
            raise ConfigError(
                f"R must exceed 2K (paper: R > 2K + f); got R={self.R}, K={self.K}"
            )
        if self.flow_threshold is not None and self.flow_threshold < 0:
            raise ConfigError(f"flow_threshold must be >= 0, got {self.flow_threshold}")
        if self.max_history is not None and self.max_history < 1:
            raise ConfigError(f"max_history must be >= 1, got {self.max_history}")
        if self.recovery_grace < 1:
            raise ConfigError(f"recovery_grace must be >= 1, got {self.recovery_grace}")
        if self.generate_burst < 1:
            raise ConfigError(
                f"generate_burst must be >= 1, got {self.generate_burst}"
            )
        object.__setattr__(self, "t", (self.n - 1) // 2)

    @property
    def recovery_budget(self) -> int:
        """Effective R: explicit value or the paper-safe default."""
        return self.R if self.R is not None else 2 * self.K + 2

    @property
    def effective_flow_threshold(self) -> int:
        """Effective history threshold: explicit, or the paper's 8n.

        A value of 0 disables flow control.
        """
        if self.flow_threshold is None:
            return 8 * self.n
        return self.flow_threshold

    @property
    def flow_control_enabled(self) -> bool:
        return self.effective_flow_threshold > 0
