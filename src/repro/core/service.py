"""The urcgc service access point (Section 5).

The user entity accesses the service through three primitives:

* ``urcgc.data.Rq`` — :meth:`UrcgcService.data_rq`: hand a payload to
  the protocol.  The paper's user entity blocks until the Confirm; in
  this sans-IO rendering the Rq returns a :class:`RequestHandle` that
  resolves when the local entity has processed the message.
* ``urcgc.data.Conf`` — the handle resolves (and the optional confirm
  callback fires) when the message was generated and locally
  processed; "in absence of failures, the urcgc service guarantees to
  process one message a round".
* ``urcgc.data.Ind`` — the indication callback fires for every message
  processed at this site, in causal order, own messages included.

Architecturally the service is the boundary between the user and the
GC sublayer; the GMT sublayer (history, recovery) lives inside
:class:`~repro.core.member.Member`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from ..errors import FlowControlBlocked

from .effects import (
    Confirm,
    Deliver,
    Discarded,
    Effect,
    Left,
    MembershipChange,
    Send,
)
from .member import Member
from .message import UserMessage
from .mid import Mid

__all__ = ["RequestHandle", "UrcgcService"]

IndicationHandler = Callable[[UserMessage], None]
ConfirmHandler = Callable[["RequestHandle"], None]
LeaveHandler = Callable[[str], None]
MembershipHandler = Callable[[MembershipChange], None]


class RequestHandle:
    """Tracks one urcgc.data.Rq until its Confirm arrives."""

    def __init__(self, payload: bytes) -> None:
        self.payload = payload
        self.mid: Mid | None = None

    @property
    def confirmed(self) -> bool:
        return self.mid is not None

    def __repr__(self) -> str:
        state = f"confirmed as {self.mid}" if self.confirmed else "pending"
        return f"RequestHandle({state})"


class UrcgcService:
    """User-facing SAP wrapping one :class:`Member` engine."""

    def __init__(
        self,
        member: Member,
        *,
        on_indication: IndicationHandler | None = None,
        on_confirm: ConfirmHandler | None = None,
        on_leave: LeaveHandler | None = None,
        on_membership: MembershipHandler | None = None,
    ) -> None:
        self.member = member
        self._on_indication = on_indication
        self._extra_indications: list[IndicationHandler] = []
        self._on_confirm = on_confirm
        self._on_leave = on_leave
        self._on_membership = on_membership
        self._pending: deque[RequestHandle] = deque()
        self.delivered: list[UserMessage] = []
        self.confirmed: list[RequestHandle] = []
        self.discarded_mids: list[Mid] = []
        #: Every membership change observed, in order.
        self.membership_changes: list[MembershipChange] = []

    def set_indication_handler(self, handler: IndicationHandler | None) -> None:
        """Install (or clear) the *primary* urcgc.data.Ind callback."""
        self._on_indication = handler

    def add_indication_handler(self, handler: IndicationHandler) -> None:
        """Register an *additional* urcgc.data.Ind callback.

        The service fans every indication out to the primary handler
        and then to each added handler, in registration order — this is
        what lets several consumers (a client-tier frontend, a
        request/reply adapter, application code) share one member
        without clobbering each other's subscriptions.
        """
        self._extra_indications.append(handler)

    def remove_indication_handler(self, handler: IndicationHandler) -> None:
        """Unregister a handler added with :meth:`add_indication_handler`."""
        self._extra_indications.remove(handler)

    def set_confirm_handler(self, handler: ConfirmHandler | None) -> None:
        """Install (or clear) the urcgc.data.Conf callback."""
        self._on_confirm = handler

    def data_rq(self, payload: bytes) -> RequestHandle:
        """The urcgc.data.Rq primitive.

        Always accepted: submissions queue behind flow control and the
        one-generation-per-round rule, confirming when processed.
        """
        handle = RequestHandle(payload)
        self.member.submit(payload)
        self._pending.append(handle)
        return handle

    def data_rq_many(self, payloads: Iterable[bytes]) -> list[RequestHandle]:
        """Fan-in variant of :meth:`data_rq`: queue a whole batch of
        payloads in one call.

        The client tier uses this to pour many client publishes into
        one member; each payload still confirms individually, in FIFO
        order, as the member generates it (one or ``generate_burst``
        per round).
        """
        return [self.data_rq(payload) for payload in payloads]

    def try_data_rq(self, payload: bytes) -> RequestHandle:
        """Non-queueing variant of :meth:`data_rq`.

        Refuses (raising :class:`FlowControlBlocked`) instead of
        queueing when the request could not be generated at the next
        round: flow control is engaged, or earlier submissions are
        already waiting their turn.  For senders that would rather
        shed or retry than build a backlog.
        """
        member = self.member
        throttled = (
            member.config.flow_control_enabled
            and member.history_length >= member.config.effective_flow_threshold
        )
        if throttled or member.pending_submissions > 0:
            reason = "flow control engaged" if throttled else "submissions queued"
            raise FlowControlBlocked(
                f"p{member.pid} cannot generate next round: {reason} "
                f"(history {member.history_length}, "
                f"queue {member.pending_submissions})"
            )
        return self.data_rq(payload)

    def dispatch(self, effects: list[Effect]) -> list[Send]:
        """Consume application-facing effects; return the Send effects
        the driver must put on the wire."""
        sends: list[Send] = []
        for effect in effects:
            if isinstance(effect, Send):
                sends.append(effect)
            elif isinstance(effect, Deliver):
                self.delivered.append(effect.message)
                if self._on_indication is not None:
                    self._on_indication(effect.message)
                for handler in self._extra_indications:
                    handler(effect.message)
            elif isinstance(effect, Confirm):
                # Submissions confirm in FIFO order (one queue, one
                # generation per round), so the oldest pending handle
                # owns this Confirm.
                if self._pending:
                    handle = self._pending.popleft()
                    handle.mid = effect.mid
                    self.confirmed.append(handle)
                    if self._on_confirm is not None:
                        self._on_confirm(handle)
            elif isinstance(effect, Left):
                if self._on_leave is not None:
                    self._on_leave(effect.reason)
            elif isinstance(effect, Discarded):
                self.discarded_mids.extend(effect.discarded)
            elif isinstance(effect, MembershipChange):
                self.membership_changes.append(effect)
                if self._on_membership is not None:
                    self._on_membership(effect)
        return sends
