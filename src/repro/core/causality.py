"""Causal-relation bookkeeping (Definition 3.1 of the paper).

The paper's causality is *application declared*: a message carries the
list of mids it causally depends on, and only dependencies "significant
for p" are published.  This module provides:

* :class:`CausalContext` — sender-side helper implementing the paper's
  *intermediate interpretation*: a process roots at most one sequence
  (each of its messages depends on its previous one) and may declare a
  dependency on the last processed message of any other process.
  Consequently a message depends on at most ``n`` others.
* :class:`FullCausalContext` — the unrestricted Definition 3.1: a
  process may root several concurrent sequences.  Used by the
  causality-interpretation ablation.
* :func:`validate_deps` — structural checks shared by both.
* :class:`SetDependencyTracker` / :class:`ContiguousDependencyTracker`
  — receiver-side "is every dependency processed?" predicates; the
  contiguous one exploits the intermediate interpretation (per-origin
  processing is in seq order), the set one handles arbitrary DAGs.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from ..errors import CausalityViolationError
from ..types import ProcessId, SeqNo
from .mid import NO_MESSAGE, Mid

__all__ = [
    "validate_deps",
    "CausalContext",
    "FullCausalContext",
    "DependencyTracker",
    "ContiguousDependencyTracker",
    "SetDependencyTracker",
]


def validate_deps(mid: Mid, deps: Iterable[Mid]) -> tuple[Mid, ...]:
    """Check structural sanity of a dependency list.

    Rules derived from Definition 3.1: a message cannot depend on
    itself; it cannot depend on a *later* message of its own origin
    (acyclicity within a sequence); and it may name each origin at most
    once (the intermediate interpretation bounds the list by ``n``).
    """
    deps = tuple(deps)
    seen_origins: set[ProcessId] = set()
    for dep in deps:
        if dep == mid:
            raise CausalityViolationError(f"{mid} depends on itself")
        if dep.origin == mid.origin and dep.seq >= mid.seq:
            raise CausalityViolationError(
                f"{mid} depends on later own message {dep}: cycle in sequence"
            )
        if dep.origin in seen_origins:
            raise CausalityViolationError(
                f"{mid} names origin {dep.origin} twice in its dependency list"
            )
        seen_origins.add(dep.origin)
    return deps


class CausalContext:
    """Sender-side dependency construction, intermediate interpretation.

    The process's own messages form one chain; calls to
    :meth:`note_processed` record the latest processed message of other
    origins; :meth:`mark_significant` flags the origins whose latest
    message the *next* generated message should causally follow
    (the paper: the causal relationship must be "significant for p" —
    not every reception creates a dependency).

    By default every noted origin is significant, which matches the
    conservative usage in the paper's simulations.
    """

    def __init__(self, pid: ProcessId, *, auto_significant: bool = True) -> None:
        self.pid = pid
        self.auto_significant = auto_significant
        self._own_last: SeqNo = NO_MESSAGE
        self._last_processed: dict[ProcessId, Mid] = {}
        self._significant: set[ProcessId] = set()

    @property
    def own_last_seq(self) -> SeqNo:
        return self._own_last

    def restore_own_seq(self, seq: SeqNo) -> None:
        """Fast-forward the own counter to at least ``seq``.

        Used when rebuilding a context after a crash: the new
        incarnation must never reuse a sequence number the previous one
        may have emitted (PROTOCOL §12).
        """
        if seq > self._own_last:
            self._own_last = seq

    def note_processed(self, mid: Mid) -> None:
        """Record that ``mid`` was processed (candidate dependency)."""
        if mid.origin == self.pid:
            return
        current = self._last_processed.get(mid.origin)
        if current is None or mid.seq > current.seq:
            self._last_processed[mid.origin] = mid
        if self.auto_significant:
            self._significant.add(mid.origin)

    def mark_significant(self, origin: ProcessId) -> None:
        """Declare the latest processed message of ``origin`` causally
        significant for the next generated message."""
        if origin == self.pid:
            raise CausalityViolationError("own sequence is implicitly significant")
        self._significant.add(origin)

    def clear_significant(self) -> None:
        """Drop all pending significance marks (fresh causal cut)."""
        self._significant.clear()

    def next_message(self) -> tuple[Mid, tuple[Mid, ...]]:
        """Allocate the next mid and its dependency list.

        The dependency list is the previous own message (if any) plus
        the latest processed message of every currently-significant
        origin.  Significance marks are consumed: the *next* message
        starts from a clean set unless ``auto_significant`` repopulates
        it.
        """
        self._own_last = SeqNo(self._own_last + 1)
        mid = Mid(self.pid, self._own_last)
        deps: list[Mid] = []
        if mid.predecessor is not None:
            deps.append(mid.predecessor)
        for origin in sorted(self._significant):
            dep = self._last_processed.get(origin)
            if dep is not None:
                deps.append(dep)
        if not self.auto_significant:
            self._significant.clear()
        return mid, validate_deps(mid, deps)


class FullCausalContext:
    """Unrestricted Definition 3.1: several concurrent own sequences.

    Each generated message either extends one of the process's existing
    sequences or roots a new one.  Mids stay ``(origin, seq)`` with a
    single per-origin counter (uniqueness), but the chain structure is
    explicit in the dependency lists rather than implied by ``seq``.
    """

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self._counter: SeqNo = NO_MESSAGE
        self._sequence_heads: dict[str, Mid] = {}
        self._last_processed: dict[ProcessId, Mid] = {}

    @property
    def sequences(self) -> list[str]:
        return sorted(self._sequence_heads)

    def note_processed(self, mid: Mid) -> None:
        if mid.origin == self.pid:
            return
        current = self._last_processed.get(mid.origin)
        if current is None or mid.seq > current.seq:
            self._last_processed[mid.origin] = mid

    def next_message(
        self,
        *,
        sequence: str = "main",
        new_root: bool = False,
        significant: Iterable[ProcessId] = (),
    ) -> tuple[Mid, tuple[Mid, ...]]:
        """Allocate the next mid on ``sequence``.

        ``new_root=True`` starts the sequence afresh (no dependency on
        its previous head), realizing point (i) of Definition 3.1 where
        a process roots several concurrent chains.
        """
        self._counter = SeqNo(self._counter + 1)
        mid = Mid(self.pid, self._counter)
        deps: list[Mid] = []
        head = self._sequence_heads.get(sequence)
        if head is not None and not new_root:
            deps.append(head)
        for origin in sorted(set(significant)):
            dep = self._last_processed.get(origin)
            if dep is not None:
                deps.append(dep)
        self._sequence_heads[sequence] = mid
        return mid, validate_deps(mid, deps)


class DependencyTracker(Protocol):
    """Receiver-side predicate: has a mid been processed yet?"""

    def is_processed(self, mid: Mid) -> bool: ...

    def mark_processed(self, mid: Mid) -> None: ...


class ContiguousDependencyTracker:
    """Tracker exploiting per-origin in-order processing.

    Under the intermediate interpretation message ``(o, s)`` depends on
    ``(o, s-1)``, so processing within an origin is contiguous and a
    single counter per origin suffices.  ``mark_processed`` enforces
    the contiguity invariant.

    Void gaps (rejoin extension, PROTOCOL §12): a JOIN decision can
    declare a closed seq range of an origin lost forever — discarded by
    the orphan rule and bounded by the rejoining incarnation's last own
    seq.  Such a range is registered with :meth:`add_gap`; seqs inside
    it count as processed once the frontier reaches the gap, and the
    contiguity check jumps over it.
    """

    def __init__(self) -> None:
        self._last: dict[ProcessId, SeqNo] = {}
        self._gaps: dict[ProcessId, list[tuple[SeqNo, SeqNo]]] = {}
        #: Bumped on every mutation; lets callers cache derived views
        #: (the member's last-processed vector) and invalidate exactly
        #: when the tracker changed — including out-of-band mutation by
        #: the storage layer's ``restore``.
        self.version = 0

    def add_gap(self, origin: ProcessId, first: SeqNo, last: SeqNo) -> None:
        """Declare ``[first, last]`` of ``origin`` void (never arriving)."""
        if last < first:
            return
        self.version += 1
        gaps = self._gaps.setdefault(origin, [])
        merged = (first, last)
        kept: list[tuple[SeqNo, SeqNo]] = []
        for gap in gaps:
            if gap[1] + 1 < merged[0] or merged[1] + 1 < gap[0]:
                kept.append(gap)
            else:
                merged = (min(gap[0], merged[0]), max(gap[1], merged[1]))
        kept.append(merged)
        kept.sort()
        self._gaps[origin] = kept

    def gaps(self) -> dict[ProcessId, tuple[tuple[SeqNo, SeqNo], ...]]:
        """Copy of the registered void ranges, for snapshotting."""
        return {origin: tuple(gaps) for origin, gaps in self._gaps.items() if gaps}

    def raw_last(self, origin: ProcessId) -> SeqNo:
        """Highest seq actually processed (gaps not credited)."""
        return self._last.get(origin, NO_MESSAGE)

    def last_processed(self, origin: ProcessId) -> SeqNo:
        """Processing frontier: last seq processed *or agreed void*."""
        return self._frontier(origin)

    def is_processed(self, mid: Mid) -> bool:
        return mid.seq <= self._frontier(mid.origin)

    def mark_processed(self, mid: Mid) -> None:
        expected = self._frontier(mid.origin) + 1
        if mid.seq != expected:
            raise CausalityViolationError(
                f"out-of-order processing: {mid} after seq "
                f"{self._last.get(mid.origin, NO_MESSAGE)} of origin {mid.origin}"
            )
        self._last[mid.origin] = mid.seq
        self.version += 1

    def restore(
        self,
        last: dict[ProcessId, SeqNo],
        gaps: dict[ProcessId, tuple[tuple[SeqNo, SeqNo], ...]] | None = None,
    ) -> None:
        """Rebuild tracker state from a snapshot."""
        self.version += 1
        self._last = {o: s for o, s in last.items() if s > NO_MESSAGE}
        self._gaps = {}
        if gaps:
            for origin, ranges in gaps.items():
                for first, end in ranges:
                    self.add_gap(origin, first, end)

    def snapshot(self) -> dict[ProcessId, SeqNo]:
        """Copy of the per-origin last-processed vector (raw)."""
        return dict(self._last)

    def _frontier(self, origin: ProcessId) -> SeqNo:
        frontier = self._last.get(origin, NO_MESSAGE)
        for first, end in self._gaps.get(origin, ()):
            if first <= frontier + 1:
                if end > frontier:
                    frontier = end
            else:
                break
        return frontier


class SetDependencyTracker:
    """Tracker for arbitrary dependency DAGs (full Definition 3.1)."""

    def __init__(self) -> None:
        self._processed: set[Mid] = set()

    def is_processed(self, mid: Mid) -> bool:
        return mid in self._processed

    def mark_processed(self, mid: Mid) -> None:
        if mid in self._processed:
            raise CausalityViolationError(f"{mid} processed twice")
        self._processed.add(mid)

    def __len__(self) -> int:
        return len(self._processed)
