"""``python -m repro`` — run the paper's experiments from the shell.

Delegates to :mod:`repro.harness.runner`:

    python -m repro list            # experiments and subcommands
    python -m repro run figure4     # regenerate one table/figure
    python -m repro torture         # randomized simulator audits
    python -m repro chaos           # live fault-injected runs
    python -m repro recover         # crash-and-recover torture
    python -m repro serve           # client tier over sharded groups
    python -m repro lint            # protocol-aware static analysis
    python -m repro report x.jsonl  # render an observability trace
"""

import sys

from .harness.runner import main

if __name__ == "__main__":
    sys.exit(main())
