"""``python -m repro`` — run the paper's experiments from the shell.

Delegates to :mod:`repro.harness.runner`:

    python -m repro list
    python -m repro run figure4
"""

import sys

from .harness.runner import main

if __name__ == "__main__":
    sys.exit(main())
