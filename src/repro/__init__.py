"""repro — reproduction of *Causal Ordering in Reliable Group
Communications* (Aiello, Pagani, Rossi; SIGCOMM 1993).

The package implements the paper's **urcgc** algorithm — uniform
reliable causal group communication with a rotating coordinator,
history-buffer recovery, and embedded crash handling — together with
the substrates its evaluation needs: a deterministic discrete-event
simulator, a datagram LAN with general-omission fault injection, the
CBCAST and Psync baselines, workload generators, and an experiment
harness regenerating every table and figure of the paper.

Quickstart::

    from repro import SimCluster, UrcgcConfig
    from repro.workloads import FixedBudgetWorkload
    from repro.types import ProcessId

    config = UrcgcConfig(n=5, K=3)
    pids = [ProcessId(i) for i in range(config.n)]
    cluster = SimCluster(config, workload=FixedBudgetWorkload(pids, total=20))
    cluster.run_until_quiescent(drain_subruns=2)
    print(cluster.delay_report().mean_delay)  # D, in rtd units
"""

from .core import (
    LeaveRule,
    Member,
    Mid,
    UrcgcConfig,
    UrcgcService,
    UserMessage,
)
from .harness import SimCluster
from .sim import Kernel

__version__ = "1.0.0"

__all__ = [
    "LeaveRule",
    "Member",
    "Mid",
    "UrcgcConfig",
    "UrcgcService",
    "UserMessage",
    "SimCluster",
    "Kernel",
    "__version__",
]
