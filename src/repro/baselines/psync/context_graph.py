"""The Psync context graph [PBS89].

Psync models a *conversation* as a directed acyclic graph of messages:
each message's *context* is the set of messages the sender had received
when it sent — the current leaves of its local graph.  A received
message can be attached (and delivered) only when its whole context is
present; otherwise it waits in a bounded pending buffer, whose
overflow policy is Psync's flow control ("deletion of the messages
exceeding a given upper bound, thus increasing the rate of omission
failures" — Section 6 of the reproduced paper).
"""

from __future__ import annotations

from ...errors import DuplicateMidError
from ...types import ProcessId

__all__ = ["MessageId", "GraphNode", "ContextGraph"]

#: Psync message ids: (sender, per-sender sequence).
MessageId = tuple[ProcessId, int]


class GraphNode:
    """One vertex of the context graph."""

    __slots__ = ("mid", "preds", "payload")

    def __init__(self, mid: MessageId, preds: tuple[MessageId, ...], payload: bytes) -> None:
        self.mid = mid
        self.preds = preds
        self.payload = payload


class ContextGraph:
    """One participant's view of the conversation.

    Parameters
    ----------
    pending_bound:
        Maximum messages parked waiting for context; beyond it the
        *newest* arrival is dropped (counted as an induced omission).
        ``None`` disables the bound.
    """

    def __init__(self, *, pending_bound: int | None = None) -> None:
        self._nodes: dict[MessageId, GraphNode] = {}
        self._leaves: set[MessageId] = set()
        self._pending: dict[MessageId, GraphNode] = {}
        self._masked: set[ProcessId] = set()
        self.pending_bound = pending_bound
        self.induced_omissions = 0

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def contains(self, mid: MessageId) -> bool:
        return mid in self._nodes

    def leaves(self) -> tuple[MessageId, ...]:
        """The current context: messages with no successors yet."""
        return tuple(sorted(self._leaves))

    def node(self, mid: MessageId) -> GraphNode | None:
        return self._nodes.get(mid)

    def mask_out(self, pid: ProcessId) -> list[GraphNode]:
        """Remove a failed participant from the conversation.

        Pending messages *from* ``pid`` are dropped, and contexts that
        reference ``pid``'s unreceived messages are waived, releasing
        whatever they blocked.  Returns the released nodes, in
        conversation order.
        """
        self._masked.add(pid)
        for mid in [m for m in self._pending if m[0] == pid]:
            del self._pending[mid]
        return self._drain()

    def masked(self) -> frozenset[ProcessId]:
        return frozenset(self._masked)

    def _context_satisfied(self, node: GraphNode) -> bool:
        return all(
            pred in self._nodes or pred[0] in self._masked for pred in node.preds
        )

    def attach(self, node: GraphNode) -> list[GraphNode]:
        """Insert a (local or received) message.

        Returns the messages that became attachable, in conversation
        order (the given node first if its context was complete).
        """
        if node.mid in self._nodes or node.mid in self._pending:
            raise DuplicateMidError(f"message {node.mid} already in the graph")
        if node.mid[0] in self._masked:
            self.induced_omissions += 1
            return []
        if not self._context_satisfied(node):
            if (
                self.pending_bound is not None
                and len(self._pending) >= self.pending_bound
            ):
                # Flow control: drop the arrival, inducing an omission.
                self.induced_omissions += 1
                return []
            self._pending[node.mid] = node
            return []
        self._insert(node)
        return [node] + self._drain()

    def _insert(self, node: GraphNode) -> None:
        self._nodes[node.mid] = node
        for pred in node.preds:
            self._leaves.discard(pred)
        self._leaves.add(node.mid)

    def _drain(self) -> list[GraphNode]:
        released: list[GraphNode] = []
        progress = True
        while progress:
            progress = False
            for mid in sorted(self._pending):
                node = self._pending[mid]
                if self._context_satisfied(node):
                    del self._pending[mid]
                    self._insert(node)
                    released.append(node)
                    progress = True
                    break
        return released
