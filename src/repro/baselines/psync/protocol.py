"""The Psync conversation engine.

A thin sans-IO engine over the context graph: sending attaches the
current leaves as the message's context; receiving attaches/delivers
in context order; ``mask_out`` (Psync's specialized failure operation)
removes a crashed participant and unblocks whatever waited on it.

The reproduced paper uses Psync only where "the comparison is
possible": it shares urcgc's causal-delivery semantics but handles
failures with a specialized blocking operation and controls buffering
by *dropping* messages, which is what the Figure 6 discussion
contrasts with urcgc's generation-throttling flow control.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ...core.effects import Confirm, Deliver, Effect, Send
from ...core.mid import Mid
from ...errors import ConfigError, MemberLeftError
from ...net.addressing import BROADCAST_GROUP, GroupAddress
from ...net.wire import Reader, Writer, global_registry
from ...types import ProcessId, SeqNo
from .context_graph import ContextGraph, GraphNode, MessageId

__all__ = ["PsyncData", "PsyncEngine", "KIND_PSYNC_DATA"]

KIND_PSYNC_DATA = "data"
_TAG_PSYNC = 40


@dataclass(frozen=True)
class PsyncData:
    """A conversation message: id, context (predecessor ids), payload."""

    sender: ProcessId
    seq: int
    preds: tuple[MessageId, ...]
    payload: bytes = b""

    @property
    def mid(self) -> MessageId:
        return (self.sender, self.seq)

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        writer.u32(self.seq)
        writer.u16(len(self.preds))
        for pid, seq in self.preds:
            writer.u16(pid)
            writer.u32(seq)
        writer.bytes_field(self.payload)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "PsyncData":
        sender = ProcessId(reader.u16())
        seq = reader.u32()
        preds = tuple(
            (ProcessId(reader.u16()), reader.u32()) for _ in range(reader.u16())
        )
        payload = reader.bytes_field()
        return cls(sender, seq, preds, payload)


global_registry.register(_TAG_PSYNC, PsyncData, PsyncData.decode_fields)


class PsyncEngine:
    """One Psync conversation participant."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        *,
        group: GroupAddress = BROADCAST_GROUP,
        pending_bound: int | None = None,
    ) -> None:
        if not 0 <= pid < n:
            raise ConfigError(f"pid {pid} outside group of size {n}")
        self.pid = pid
        self.n = n
        self.group = group
        self.graph = ContextGraph(pending_bound=pending_bound)
        self._outbox: deque[bytes] = deque()
        self._seq = 0
        self._crashed = False

    # ------------------------------------------------------------------

    def submit(self, payload: bytes) -> None:
        if self._crashed:
            raise MemberLeftError(f"p{self.pid} has crashed")
        self._outbox.append(payload)

    @property
    def pending_submissions(self) -> int:
        return len(self._outbox)

    @property
    def delivered_count(self) -> int:
        return len(self.graph)

    def mask_out(self, pid: ProcessId) -> list[Effect]:
        """Psync's failure operation: drop ``pid`` from the conversation
        and deliver whatever its removal unblocks."""
        if self._crashed:
            return []
        return [Deliver(self._as_delivery(node)) for node in self.graph.mask_out(pid)]

    def crash(self) -> None:
        self._crashed = True

    # ------------------------------------------------------------------

    def on_round(self, round_no: int) -> list[Effect]:
        if self._crashed or not self._outbox:
            return []
        effects: list[Effect] = []
        payload = self._outbox.popleft()
        self._seq += 1
        message = PsyncData(self.pid, self._seq, self.graph.leaves(), payload)
        node = GraphNode(message.mid, message.preds, message.payload)
        for attached in self.graph.attach(node):
            effects.append(Deliver(self._as_delivery(attached)))
        effects.append(Send(self.group, message, KIND_PSYNC_DATA))
        effects.append(Confirm(Mid(self.pid, SeqNo(self._seq))))
        return effects

    def on_message(self, message: object) -> list[Effect]:
        if self._crashed:
            return []
        if not isinstance(message, PsyncData):
            raise TypeError(f"unexpected message type {type(message).__name__}")
        if self.graph.contains(message.mid):
            return []
        effects: list[Effect] = []
        node = GraphNode(message.mid, message.preds, message.payload)
        try:
            attached = self.graph.attach(node)
        except Exception:  # lint: disable=H403
            # Deliberate drop semantics: a node the context graph
            # rejects (duplicate mid, inconsistent predecessors) is
            # treated like a lost datagram, exactly as a Psync receiver
            # treats an unparseable frame.
            return []
        for released in attached:
            effects.append(Deliver(self._as_delivery(released)))
        return effects

    @staticmethod
    def _as_delivery(node: GraphNode) -> PsyncData:
        return PsyncData(node.mid[0], node.mid[1], node.preds, node.payload)
