"""Psync baseline [PBS89]: context-graph conversations with mask_out."""

from .context_graph import ContextGraph, GraphNode, MessageId
from .protocol import KIND_PSYNC_DATA, PsyncData, PsyncEngine

__all__ = [
    "ContextGraph",
    "GraphNode",
    "MessageId",
    "KIND_PSYNC_DATA",
    "PsyncData",
    "PsyncEngine",
]
