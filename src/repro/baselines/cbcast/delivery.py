"""CBCAST causal delivery queue.

Implements the BSS91 delivery rule over vector timestamps: a message
from ``j`` is delivered when it is the next one from ``j`` and every
message it causally follows has been delivered locally; otherwise it
waits in the delay queue.
"""

from __future__ import annotations

from ...types import ProcessId
from .messages import CbcastData
from .vector_clock import VectorClock

__all__ = ["CausalDeliveryQueue"]


class CausalDeliveryQueue:
    """Delay queue + local delivery vector for one CBCAST process."""

    def __init__(self, pid: ProcessId, n: int) -> None:
        self.pid = pid
        self.local = VectorClock(n)
        self._delayed: list[CbcastData] = []
        self._seen: set[tuple[ProcessId, int]] = set()

    @property
    def delayed_count(self) -> int:
        return len(self._delayed)

    def delivered_count_from(self, sender: ProcessId) -> int:
        return self.local[sender]

    def receive(self, message: CbcastData) -> list[CbcastData]:
        """Accept a received message; return everything newly
        deliverable, in delivery order (the message itself may or may
        not be included)."""
        key = (message.sender, message.vt[message.sender])
        if key in self._seen or message.vt[message.sender] <= self.local[message.sender]:
            return []  # duplicate or already delivered
        self._seen.add(key)
        self._delayed.append(message)
        return self._drain()

    def _drain(self) -> list[CbcastData]:
        delivered: list[CbcastData] = []
        progress = True
        while progress:
            progress = False
            # Deterministic scan order: by (sender, seq).
            self._delayed.sort(key=lambda m: (m.sender, m.vt[m.sender]))
            for message in self._delayed:
                if message.vt.deliverable_from(message.sender, self.local):
                    self.local.merge(message.vt)
                    delivered.append(message)
                    self._delayed.remove(message)
                    progress = True
                    break
        return delivered

    def missing_from(self, sender: ProcessId) -> int | None:
        """Sequence number of the first undelivered message from
        ``sender`` that some delayed message is waiting on, if any."""
        needed = None
        for message in self._delayed:
            want = message.vt[sender]
            if message.sender == sender:
                want = message.vt[sender] - 1
            if want > self.local[sender]:
                first = self.local[sender] + 1
                needed = first if needed is None else min(needed, first)
        return needed
