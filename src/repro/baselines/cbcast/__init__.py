"""CBCAST baseline [BSS91]: vector-clock causal multicast with
piggyback stability and a blocking view-change flush protocol."""

from .delivery import CausalDeliveryQueue
from .messages import (
    KIND_CBCAST_DATA,
    KIND_CBCAST_FLUSH,
    KIND_CBCAST_STABILITY,
    KIND_CBCAST_VIEW,
    CbcastData,
    Flush,
    StabilityGossip,
    ViewChange,
)
from .protocol import CbcastEngine
from .stability import StabilityTracker
from .vector_clock import VectorClock

__all__ = [
    "CausalDeliveryQueue",
    "KIND_CBCAST_DATA",
    "KIND_CBCAST_FLUSH",
    "KIND_CBCAST_STABILITY",
    "KIND_CBCAST_VIEW",
    "CbcastData",
    "Flush",
    "StabilityGossip",
    "ViewChange",
    "CbcastEngine",
    "StabilityTracker",
    "VectorClock",
]
