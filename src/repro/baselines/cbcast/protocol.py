"""The CBCAST engine: causal multicast with a blocking flush protocol.

Normal operation (BSS91): application multicasts carry vector
timestamps and are delivered by the causal delivery rule; stability is
tracked by piggybacked delivery vectors (explicit gossip when idle)
and stable messages leave the retransmission buffer.

Failure handling is what the paper contrasts urcgc against: on a
failure suspicion the view *manager* (lowest-pid live member) runs a
flush protocol —

1. manager multicasts a ViewChange proposal; every member **stops
   sending application messages**;
2. each member retransmits its unstable messages to the group, then
   sends a Flush token to the manager;
3. when the manager holds a Flush from every surviving member it
   multicasts the ViewChange commit, installing the view and
   unblocking the application.

If the manager crashes mid-protocol, the next manager "has to be
started all over again" (Section 4 of the paper) — the measured
blocked time therefore grows much faster with consecutive manager
crashes than urcgc's embedded recovery (Figure 5).

Failure *detection* is delegated to the driver, which calls
:meth:`CbcastEngine.suspect` — mirroring how the urcgc experiments
control detection latency through ``K``.
"""

from __future__ import annotations

from collections import deque

from ...core.effects import Confirm, Deliver, Effect, Send
from ...core.mid import Mid
from ...errors import ConfigError, MemberLeftError
from ...net.addressing import BROADCAST_GROUP, GroupAddress, UnicastAddress
from ...types import ProcessId, SeqNo
from .delivery import CausalDeliveryQueue
from .messages import (
    KIND_CBCAST_DATA,
    KIND_CBCAST_FLUSH,
    KIND_CBCAST_STABILITY,
    KIND_CBCAST_VIEW,
    CbcastData,
    Flush,
    StabilityGossip,
    ViewChange,
)
from .stability import StabilityTracker

__all__ = ["CbcastEngine"]


class CbcastEngine:
    """One CBCAST process (sans-IO, driven like a urcgc Member)."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        *,
        group: GroupAddress = BROADCAST_GROUP,
        gossip_when_idle: bool = True,
    ) -> None:
        if not 0 <= pid < n:
            raise ConfigError(f"pid {pid} outside group of size {n}")
        self.pid = pid
        self.n = n
        self.group = group
        self.gossip_when_idle = gossip_when_idle
        self.queue = CausalDeliveryQueue(pid, n)
        self.stability = StabilityTracker(n)
        self.alive = [True] * n
        self.view_id = 0
        self._outbox: deque[bytes] = deque()
        self._crashed = False

        # Flush-protocol state.
        self.blocked = False
        self._pending_view: ViewChange | None = None
        self._flushes: set[ProcessId] = set()
        self._suspected: set[ProcessId] = set()
        self.blocked_rounds = 0
        self.view_changes_started = 0
        #: Last delivery vector unicast to each peer in reply to its
        #: gossip (suppresses reply loops).
        self._gossip_replies: dict[ProcessId, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------

    def submit(self, payload: bytes) -> None:
        if self._crashed:
            raise MemberLeftError(f"p{self.pid} has crashed")
        self._outbox.append(payload)

    @property
    def pending_submissions(self) -> int:
        return len(self._outbox)

    @property
    def unstable_count(self) -> int:
        return self.stability.buffered_count

    @property
    def manager(self) -> ProcessId:
        """The view manager: lowest-pid member this process trusts."""
        for pid in range(self.n):
            if self.alive[pid] and pid not in self._suspected:
                return ProcessId(pid)
        raise MemberLeftError("no live manager candidate")

    # ------------------------------------------------------------------
    # failure detection input (driven by the harness)
    # ------------------------------------------------------------------

    def suspect(self, pid: ProcessId) -> list[Effect]:
        """The failure detector reports ``pid`` as crashed."""
        if self._crashed or pid == self.pid or pid in self._suspected:
            return []
        self._suspected.add(pid)
        effects: list[Effect] = []
        # A suspicion invalidates any in-progress flush run by the
        # suspect: the protocol restarts under the next manager.
        if self._pending_view is not None and self._pending_view.manager == pid:
            self._pending_view = None
            self._flushes.clear()
        if self.manager == self.pid:
            self._start_view_change(effects)
        return effects

    # ------------------------------------------------------------------
    # driver interface
    # ------------------------------------------------------------------

    def on_round(self, round_no: int) -> list[Effect]:
        if self._crashed:
            return []
        effects: list[Effect] = []
        if self.blocked:
            self.blocked_rounds += 1
            # The manager keeps re-proposing in case the proposal or a
            # flush was lost; progress resumes when flushes arrive.
            if (
                self._pending_view is not None
                and self._pending_view.manager == self.pid
                and round_no % 2 == 1
            ):
                effects.append(Send(self.group, self._pending_view, KIND_CBCAST_VIEW))
            return effects
        # A manager with outstanding suspicions starts the flush.
        if self._suspected and self.manager == self.pid and self._pending_view is None:
            self._start_view_change(effects)
            return effects
        if self._outbox:
            payload = self._outbox.popleft()
            self.queue.local.tick(self.pid)
            message = CbcastData(
                self.pid,
                self.queue.local.copy(),
                self.queue.local.copy(),
                payload,
            )
            self.stability.buffer(message)
            self.stability.note_report(self.pid, self.queue.local)
            effects.append(Send(self.group, message, KIND_CBCAST_DATA))
            effects.append(Deliver(message))
            # CBCAST has no explicit mids; (sender, own-clock) is the
            # equivalent unique id.
            effects.append(Confirm(Mid(self.pid, SeqNo(self.queue.local[self.pid]))))
        elif (
            self.gossip_when_idle
            and round_no % 2 == 1
            and self.stability.buffered_count > 0
        ):
            # Idle with unstable messages buffered: piggybacking has
            # starved, so send an explicit stability message ("if
            # needed" — the paper's CBCAST row).  Once everything is
            # stable the protocol goes silent.
            gossip = StabilityGossip(self.pid, self.queue.local.copy())
            effects.append(Send(self.group, gossip, KIND_CBCAST_STABILITY))
        self.stability.collect_garbage(self.alive)
        return effects

    def on_message(self, message: object) -> list[Effect]:
        if self._crashed:
            return []
        effects: list[Effect] = []
        if isinstance(message, CbcastData):
            self._handle_data(message, effects)
        elif isinstance(message, StabilityGossip):
            self.stability.note_report(message.sender, message.delivered)
            self.stability.collect_garbage(self.alive)
            # Answer with our own vector (once per state change per
            # peer) so the gossiper's buffer can drain — without this,
            # a process whose own buffer emptied first would never
            # report and the gossiper would starve.  A process that
            # still holds unstable messages skips the unicast reply:
            # its own multicast gossip (next subrun) carries the same
            # vector to everyone, avoiding an O(n^2) reply wave.
            snapshot = self.queue.local.as_tuple()
            if (
                self.stability.buffered_count == 0
                and self._gossip_replies.get(message.sender) != snapshot
            ):
                self._gossip_replies[message.sender] = snapshot
                reply = StabilityGossip(self.pid, self.queue.local.copy())
                effects.append(
                    Send(
                        UnicastAddress(message.sender), reply, KIND_CBCAST_STABILITY
                    )
                )
        elif isinstance(message, ViewChange):
            self._handle_view_change(message, effects)
        elif isinstance(message, Flush):
            self._handle_flush(message, effects)
        else:
            raise TypeError(f"unexpected message type {type(message).__name__}")
        return effects

    def crash(self) -> None:
        """Driver notification: this process fail-stopped."""
        self._crashed = True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _handle_data(self, message: CbcastData, effects: list[Effect]) -> None:
        self.stability.note_report(message.sender, message.delivered)
        for delivered in self.queue.receive(message):
            self.stability.buffer(delivered)
            effects.append(Deliver(delivered))
        self.stability.note_report(self.pid, self.queue.local)
        self.stability.collect_garbage(self.alive)

    def _start_view_change(self, effects: list[Effect]) -> None:
        new_alive = tuple(
            self.alive[i] and ProcessId(i) not in self._suspected
            for i in range(self.n)
        )
        self.view_id += 1
        self.view_changes_started += 1
        proposal = ViewChange(self.pid, self.view_id, new_alive, commit=False)
        self._pending_view = proposal
        self._flushes = set()
        effects.append(Send(self.group, proposal, KIND_CBCAST_VIEW))
        # The manager flushes its own buffer and counts itself.
        self.blocked = True
        self._retransmit_unstable(effects)
        self._flushes.add(self.pid)
        self._maybe_install(effects)

    def _handle_view_change(self, message: ViewChange, effects: list[Effect]) -> None:
        if message.view_id < self.view_id and not message.commit:
            return
        if message.commit:
            if message.view_id < self.view_id and self._pending_view is None:
                return
            self.view_id = message.view_id
            self.alive = list(message.alive)
            self.blocked = False
            self._pending_view = None
            self._flushes.clear()
            self._suspected = {
                pid for pid in self._suspected if self.alive[pid]
            }
            return
        # Proposal: adopt the manager's suspicions (so a restart under
        # a new manager still excludes them), block, flush unstable
        # messages, send the token.
        for i, flag in enumerate(message.alive):
            if not flag and self.alive[i]:
                self._suspected.add(ProcessId(i))
        self.view_id = message.view_id
        self.blocked = True
        self._pending_view = message
        self._retransmit_unstable(effects)
        flush = Flush(self.pid, message.view_id, self.queue.local.copy())
        effects.append(Send(UnicastAddress(message.manager), flush, KIND_CBCAST_FLUSH))

    def _handle_flush(self, message: Flush, effects: list[Effect]) -> None:
        if self._pending_view is None or self._pending_view.manager != self.pid:
            return
        if message.view_id != self._pending_view.view_id:
            return
        self.stability.note_report(message.sender, message.delivered)
        self._flushes.add(message.sender)
        self._maybe_install(effects)

    def _maybe_install(self, effects: list[Effect]) -> None:
        assert self._pending_view is not None
        needed = {
            ProcessId(i) for i, alive in enumerate(self._pending_view.alive) if alive
        }
        if not needed <= self._flushes:
            return
        commit = ViewChange(
            self.pid, self._pending_view.view_id, self._pending_view.alive, commit=True
        )
        effects.append(Send(self.group, commit, KIND_CBCAST_VIEW))
        self.alive = list(commit.alive)
        self.blocked = False
        self._pending_view = None
        self._flushes.clear()
        self._suspected = {pid for pid in self._suspected if self.alive[pid]}

    def _retransmit_unstable(self, effects: list[Effect]) -> None:
        for message in self.stability.unstable_messages():
            retransmission = CbcastData(
                message.sender,
                message.vt,
                self.queue.local.copy(),
                message.payload,
                retransmission=True,
            )
            effects.append(Send(self.group, retransmission, KIND_CBCAST_DATA))
