"""CBCAST protocol data units.

Four PDUs, sized to match the paper's Table 1 accounting:

* :class:`CbcastData` — an application multicast carrying the sender's
  vector timestamp (4 bytes per component, the "4(n+1) bytes" row) and
  a piggybacked delivery vector used for stability tracking.
* :class:`StabilityGossip` — an explicit stability message, sent only
  when a process has been silent too long for piggybacking to work.
* :class:`ViewChange` — the manager's proposal to install a new view
  (the blocking phase starts here).
* :class:`Flush` — a member's "all my unstable messages forwarded"
  token, "of size 4(n-1) bytes" per the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.wire import Reader, Writer, global_registry
from ...types import ProcessId
from .vector_clock import VectorClock

__all__ = [
    "CbcastData",
    "StabilityGossip",
    "ViewChange",
    "Flush",
    "KIND_CBCAST_DATA",
    "KIND_CBCAST_STABILITY",
    "KIND_CBCAST_VIEW",
    "KIND_CBCAST_FLUSH",
]

KIND_CBCAST_DATA = "data"
KIND_CBCAST_STABILITY = "ctrl-stability"
KIND_CBCAST_VIEW = "ctrl-viewchange"
KIND_CBCAST_FLUSH = "ctrl-flush"

_TAG_DATA = 30
_TAG_STABILITY = 31
_TAG_VIEW = 32
_TAG_FLUSH = 33


def _write_vt(writer: Writer, vt: VectorClock) -> None:
    writer.u32_list(vt.as_tuple())


def _read_vt(reader: Reader) -> VectorClock:
    return VectorClock(reader.u32_list())


@dataclass(frozen=True)
class CbcastData:
    """An application multicast with vector timestamp and piggyback."""

    sender: ProcessId
    vt: VectorClock
    delivered: VectorClock  # piggybacked stability information
    payload: bytes = b""
    retransmission: bool = False

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        _write_vt(writer, self.vt)
        _write_vt(writer, self.delivered)
        writer.boolean(self.retransmission)
        writer.bytes_field(self.payload)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "CbcastData":
        sender = ProcessId(reader.u16())
        vt = _read_vt(reader)
        delivered = _read_vt(reader)
        retransmission = reader.boolean()
        payload = reader.bytes_field()
        return cls(sender, vt, delivered, payload, retransmission)


@dataclass(frozen=True)
class StabilityGossip:
    """Explicit stability exchange (used when piggybacking starves)."""

    sender: ProcessId
    delivered: VectorClock

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        _write_vt(writer, self.delivered)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "StabilityGossip":
        return cls(ProcessId(reader.u16()), _read_vt(reader))


@dataclass(frozen=True)
class ViewChange:
    """Manager's view-change message.

    ``commit=False`` is the proposal that starts the blocking flush
    phase; ``commit=True`` installs the new view and unblocks.
    """

    manager: ProcessId
    view_id: int
    alive: tuple[bool, ...]
    commit: bool = False

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.manager)
        writer.u32(self.view_id)
        writer.boolean(self.commit)
        writer.u16(len(self.alive))
        for flag in self.alive:
            writer.boolean(flag)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "ViewChange":
        manager = ProcessId(reader.u16())
        view_id = reader.u32()
        commit = reader.boolean()
        alive = tuple(reader.boolean() for _ in range(reader.u16()))
        return cls(manager, view_id, alive, commit)


@dataclass(frozen=True)
class Flush:
    """A member's flush token for ``view_id`` (its unstable messages
    were already retransmitted as CbcastData).  Carries the member's
    delivery vector — the paper's 4(n-1)-byte flush payload."""

    sender: ProcessId
    view_id: int
    delivered: VectorClock

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(self.sender)
        writer.u32(self.view_id)
        _write_vt(writer, self.delivered)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "Flush":
        return cls(ProcessId(reader.u16()), reader.u32(), _read_vt(reader))


global_registry.register(_TAG_DATA, CbcastData, CbcastData.decode_fields)
global_registry.register(_TAG_STABILITY, StabilityGossip, StabilityGossip.decode_fields)
global_registry.register(_TAG_VIEW, ViewChange, ViewChange.decode_fields)
global_registry.register(_TAG_FLUSH, Flush, Flush.decode_fields)
