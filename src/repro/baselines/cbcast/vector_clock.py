"""Vector clocks, the causality mechanism of CBCAST [BSS91].

CBCAST restricts the paper's application-declared causality to a
*temporal* dependence: message ``m`` causally precedes ``m'`` iff
``VT(m) < VT(m')`` componentwise.  The paper argues this "offers
reduced concurrency capabilities" compared with urcgc's explicit
dependency lists — the causality-interpretation ablation measures
exactly that.
"""

from __future__ import annotations

from ...errors import ConfigError
from ...types import ProcessId

__all__ = ["VectorClock"]


class VectorClock:
    """A fixed-width vector clock over ``n`` processes."""

    __slots__ = ("_v",)

    def __init__(self, n_or_values: int | list[int] | tuple[int, ...]) -> None:
        if isinstance(n_or_values, int):
            if n_or_values < 1:
                raise ConfigError(f"vector width must be >= 1, got {n_or_values}")
            self._v = [0] * n_or_values
        else:
            values = list(n_or_values)
            if not values:
                raise ConfigError("empty vector clock")
            if any(x < 0 for x in values):
                raise ConfigError(f"negative clock component in {values}")
            self._v = values

    @property
    def n(self) -> int:
        return len(self._v)

    def __getitem__(self, pid: int) -> int:
        return self._v[pid]

    def copy(self) -> "VectorClock":
        return VectorClock(self._v)

    def as_tuple(self) -> tuple[int, ...]:
        return tuple(self._v)

    def tick(self, pid: ProcessId) -> "VectorClock":
        """Increment ``pid``'s component (a send event at ``pid``)."""
        self._v[pid] += 1
        return self

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum (a receive event)."""
        self._check(other)
        for i, value in enumerate(other._v):
            if value > self._v[i]:
                self._v[i] = value
        return self

    def __le__(self, other: "VectorClock") -> bool:
        self._check(other)
        return all(a <= b for a, b in zip(self._v, other._v))

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self._v != other._v

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._v == other._v

    def __hash__(self) -> int:
        return hash(tuple(self._v))

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates: the events are concurrent."""
        return not self <= other and not other <= self

    def deliverable_from(self, sender: ProcessId, local: "VectorClock") -> bool:
        """The BSS91 causal delivery rule.

        A message timestamped with *this* clock, sent by ``sender``, is
        deliverable at a process whose clock is ``local`` iff it is the
        next message from ``sender`` (``VT(m)[sender] == local[sender]+1``)
        and everything it causally follows has been delivered
        (``VT(m)[k] <= local[k]`` for ``k != sender``).
        """
        self._check(local)
        if self._v[sender] != local._v[sender] + 1:
            return False
        return all(
            self._v[k] <= local._v[k] for k in range(len(self._v)) if k != sender
        )

    def _check(self, other: "VectorClock") -> None:
        if len(self._v) != len(other._v):
            raise ConfigError(
                f"vector width mismatch: {len(self._v)} vs {len(other._v)}"
            )

    def __repr__(self) -> str:
        return f"VT{tuple(self._v)}"
