"""CBCAST message stability via piggybacked delivery vectors.

Every CBCAST data message piggybacks the sender's delivery vector;
idle processes fall back to explicit stability gossip.  A message
``(origin, seq)`` is *stable* once every view member's reported
delivery vector covers it, at which point it can leave the
retransmission buffer.
"""

from __future__ import annotations

from ...types import ProcessId
from .messages import CbcastData
from .vector_clock import VectorClock

__all__ = ["StabilityTracker"]


class StabilityTracker:
    """Per-member delivery knowledge and the unstable-message buffer."""

    def __init__(self, n: int) -> None:
        self._n = n
        self._reported = [VectorClock(n) for _ in range(n)]
        #: (origin, seq) -> buffered message awaiting stability.
        self._buffer: dict[tuple[ProcessId, int], CbcastData] = {}

    @property
    def buffered_count(self) -> int:
        return len(self._buffer)

    def buffer(self, message: CbcastData) -> None:
        """Retain a delivered message until it becomes stable."""
        key = (message.sender, message.vt[message.sender])
        self._buffer.setdefault(key, message)

    def note_report(self, member: ProcessId, delivered: VectorClock) -> None:
        """Fold a piggybacked/gossiped/flushed delivery vector."""
        self._reported[member].merge(delivered)

    def stable_vector(self, alive: list[bool]) -> VectorClock:
        """Componentwise minimum over the alive members' reports."""
        stable = [0] * self._n
        rows = [self._reported[i] for i in range(self._n) if alive[i]]
        if not rows:
            return VectorClock(self._n)
        for k in range(self._n):
            stable[k] = min(row[k] for row in rows)
        return VectorClock(stable)

    def collect_garbage(self, alive: list[bool]) -> int:
        """Drop stable messages from the buffer; returns count dropped."""
        stable = self.stable_vector(alive)
        victims = [
            key for key in self._buffer if key[1] <= stable[key[0]]
        ]
        for key in victims:
            del self._buffer[key]
        return len(victims)

    def unstable_messages(self) -> list[CbcastData]:
        """Everything still buffered, in (origin, seq) order — this is
        what a member retransmits during a flush."""
        return [self._buffer[key] for key in sorted(self._buffer)]
