"""Baseline protocols the paper compares urcgc against."""
